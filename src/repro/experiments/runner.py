"""Experiment runner: the figure-facing façade over the job engine.

The paper's experiments all share a structure: simulate a set of traces with
a set of prefetchers and compare against the no-prefetching baseline of the
same trace.  :class:`ExperimentRunner` provides exactly that.  Since the
job-engine refactor it no longer simulates anything itself: every request is
expressed as a :class:`~repro.experiments.jobs.SimulationJob` and dispatched
through an :class:`~repro.experiments.engine.ExperimentEngine`, which

* deduplicates repeated work in-process (figures sharing a grid pay once),
* answers warm re-runs from the persistent on-disk cache, and
* fans cold batches out over worker processes when ``jobs > 1`` —
  with results bit-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.executors import JobFailure
from repro.experiments.faults import FaultsArg
from repro.experiments.jobs import (
    MixSimulationJob,
    SimulationJob,
    build_trace_cached,
)
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.stats import SimulationStats
from repro.sim.types import MemoryAccess
from repro.workloads.suites import trace_specs_for_suite
from repro.workloads.trace import TraceSpec


@dataclass(frozen=True)
class RunScale:
    """Controls how much work an experiment does.

    The paper simulates 200M instructions per trace on ChampSim; a Python
    simulator cannot, so experiments run scaled-down traces.  The relative
    comparisons the figures make survive the scaling because every
    prefetcher sees exactly the same trace and the same system.
    """

    trace_length: int = 12_000
    traces_per_suite: Optional[int] = 3
    warmup_fraction: float = 0.0

    def select(self, specs: Sequence[TraceSpec]) -> List[TraceSpec]:
        """Pick the subset of trace specs this scale allows."""
        if self.traces_per_suite is None:
            return list(specs)
        return list(specs)[: self.traces_per_suite]


@dataclass
class RunResult:
    """One (trace, prefetcher) simulation outcome plus its baseline.

    Under the engine's default ``strict=False``, a cell whose job (or
    whose baseline job) exhausted its retries carries the structured
    :class:`~repro.experiments.executors.JobFailure` in place of stats.
    Every derived metric then reads ``nan`` — which is exactly how the
    report tables mark the cell — while :attr:`failure` keeps the
    evidence (key, attempts, reason, traceback) for the failure report.
    """

    spec: TraceSpec
    prefetcher: str
    stats: Union[SimulationStats, JobFailure]
    baseline: Union[SimulationStats, JobFailure]

    @property
    def failure(self) -> Optional[JobFailure]:
        """The cell's failure (its own job's first, else its baseline's)."""
        if isinstance(self.stats, JobFailure):
            return self.stats
        if isinstance(self.baseline, JobFailure):
            return self.baseline
        return None

    @property
    def ok(self) -> bool:
        """True when both the cell and its baseline simulated."""
        return self.failure is None

    @property
    def speedup(self) -> float:
        """IPC speedup over the no-prefetching baseline."""
        if not self.ok:
            return float("nan")
        return self.stats.speedup(self.baseline)

    @property
    def accuracy(self) -> float:
        """Overall prefetch accuracy."""
        if isinstance(self.stats, JobFailure):
            return float("nan")
        return self.stats.prefetch.accuracy

    @property
    def coverage(self) -> float:
        """LLC miss coverage relative to the baseline run."""
        if not self.ok:
            return float("nan")
        return self.stats.coverage(self.baseline)

    @property
    def late_fraction(self) -> float:
        """Fraction of useful prefetches that were late."""
        if isinstance(self.stats, JobFailure):
            return float("nan")
        return self.stats.prefetch.late_fraction

    def row(self) -> Dict[str, object]:
        """Flat dictionary representation (for reports and tests).

        Failed cells keep the exact same columns with ``nan`` metrics, so
        partial grids render with failed cells marked instead of raising
        or reshaping the table.
        """
        nan = float("nan")
        stats_ok = not isinstance(self.stats, JobFailure)
        baseline_ok = not isinstance(self.baseline, JobFailure)
        return {
            "trace": self.spec.name,
            "suite": self.spec.suite,
            "prefetcher": self.prefetcher,
            "speedup": self.speedup,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "late_fraction": self.late_fraction,
            "ipc": self.stats.ipc if stats_ok else nan,
            "baseline_ipc": self.baseline.ipc if baseline_ok else nan,
            "llc_mpki": self.stats.llc_mpki if stats_ok else nan,
        }


PrefetcherParams = Union[Mapping[str, object], Sequence[Tuple[str, object]]]


def _normalize_params(
    params: Optional[PrefetcherParams],
) -> Tuple[Tuple[str, object], ...]:
    if not params:
        return ()
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = params
    return tuple(sorted((str(key), value) for key, value in items))


class ExperimentRunner:
    """Runs (trace x prefetcher) grids through the job engine."""

    def __init__(
        self,
        scale: Optional[RunScale] = None,
        system: Optional[SystemConfig] = None,
        *,
        engine: Optional[ExperimentEngine] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: Optional[bool] = None,
        batch: str = "auto",
        kernel: str = "auto",
        retries: Optional[int] = None,
        job_timeout: Optional[float] = None,
        faults: FaultsArg = None,
        strict: bool = False,
    ) -> None:
        """Create a runner.

        Args:
            scale: trace length / suite-subset policy (default laptop scale).
            system: the simulated system (default 1-core Table II config).
            engine: share an existing engine (its executor, cache and memo);
                when given, ``jobs``/``cache_dir``/``use_cache`` and the
                fault-tolerance knobs below are ignored.
            jobs: worker-process count; ``None`` or ``1`` runs serially.
            cache_dir: persistent cache location (default ``.repro-cache``
                or ``$REPRO_CACHE_DIR``).
            use_cache: force the persistent cache on/off; defaults to on
                unless ``REPRO_CACHE=0``.
            retries: total attempts per job before it becomes a
                :class:`~repro.experiments.executors.JobFailure`
                (``None`` = :class:`RetryPolicy` default).
            job_timeout: per-job wall-clock bound in the pool path; a hung
                worker is reclaimed and the job retried.
            faults: chaos plan/spec forwarded to the engine (``None``
                defers to ``REPRO_FAULT_PLAN``).
            strict: re-raise on exhausted retries instead of returning
                failure-marked cells.
            batch: simulation-kernel selection forwarded to every
                single-core job (``"auto"``/``"on"``/``"off"``, see
                :class:`~repro.experiments.jobs.SimulationJob`); results
                are bit-identical for every value.
            kernel: prefetcher-state tier forwarded to every single-core
                job (``"auto"``/``"python"``/``"compiled"``, see
                :class:`~repro.experiments.jobs.SimulationJob`); like
                ``batch``, results are bit-identical for every value and
                ``"compiled"`` silently falls back when the extension is
                not built.
        """
        self.scale = scale if scale is not None else RunScale()
        self.system = system if system is not None else default_system_config(1)
        self.batch = batch
        self.kernel = kernel
        if engine is None:
            engine = build_engine(
                jobs=jobs,
                cache_dir=cache_dir,
                use_cache=use_cache,
                retries=retries,
                job_timeout=job_timeout,
                faults=faults,
                strict=strict,
            )
        self.engine = engine

    # ------------------------------------------------------------------ #
    # Job construction
    # ------------------------------------------------------------------ #
    def job_for(
        self,
        spec: TraceSpec,
        prefetcher_name: str = "none",
        system: Optional[SystemConfig] = None,
        prefetcher_params: Optional[PrefetcherParams] = None,
    ) -> SimulationJob:
        """Build the :class:`SimulationJob` for one grid cell at this scale."""
        return SimulationJob(
            spec=spec,
            prefetcher=prefetcher_name if prefetcher_name else "none",
            system=system if system is not None else self.system,
            trace_length=self.scale.trace_length,
            prefetcher_params=_normalize_params(prefetcher_params),
            batch=self.batch,
            kernel=self.kernel,
        )

    def mix_job_for(
        self,
        specs: Sequence[TraceSpec],
        prefetcher_name: str = "none",
        trace_length: int = 8_000,
        max_instructions_per_core: int = 30_000,
        mode: str = "exact",
        epoch_instructions: int = 0,
        workers: int = 1,
        prefetcher_params: Optional[PrefetcherParams] = None,
    ) -> MixSimulationJob:
        """Build the :class:`MixSimulationJob` for one multi-core mix.

        ``specs`` holds one trace spec per core; the runner's base system
        configuration is scaled for the core count inside the simulator.
        Unlike single-core jobs, mixes keep their own ``trace_length`` /
        ``max_instructions_per_core`` knobs (the paper's multi-core runs
        are scaled independently of the single-core grids).
        """
        return MixSimulationJob(
            specs=tuple(specs),
            prefetcher=prefetcher_name if prefetcher_name else "none",
            system=self.system,
            trace_length=trace_length,
            max_instructions_per_core=max_instructions_per_core,
            mode=mode,
            epoch_instructions=epoch_instructions,
            workers=workers,
            prefetcher_params=_normalize_params(prefetcher_params),
        )

    # ------------------------------------------------------------------ #
    # Trace and baseline management
    # ------------------------------------------------------------------ #
    def trace_for(self, spec: TraceSpec) -> List[MemoryAccess]:
        """Build (or fetch from the process-wide cache) the trace for ``spec``.

        Delegates to the same per-process memo the job worker uses, so a
        caller inspecting a trace shares the object the simulations saw.
        """
        return build_trace_cached(spec, self.scale.trace_length)

    def _system_key(self, system: SystemConfig) -> str:
        """Full deterministic content key of ``system``.

        Replaces the old truncated, process-randomized ``hash()`` over six
        fields: every configuration field now participates, so systems that
        differ only in MSHRs, latencies or prefetch-queue sizes no longer
        share a cached baseline, and keys are stable across processes.
        """
        return system.content_key()

    def baseline_for(
        self, spec: TraceSpec, system: Optional[SystemConfig] = None
    ) -> SimulationStats:
        """No-prefetching run of ``spec`` (cached per system configuration).

        Memoization lives in the engine: the job's content key covers the
        spec, the scale and every field of ``system`` (via
        :meth:`_system_key` semantics), so repeated calls return the same
        stats object without re-simulating.
        """
        return self.engine.run_job(self.job_for(spec, "none", system))

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run_one(
        self,
        spec: TraceSpec,
        prefetcher_name: str,
        system: Optional[SystemConfig] = None,
        prefetcher_params: Optional[PrefetcherParams] = None,
    ) -> RunResult:
        """Simulate one trace with one prefetcher."""
        system = system if system is not None else self.system
        baseline = self.baseline_for(spec, system)
        if prefetcher_name in ("none", None):
            stats = baseline
        else:
            stats = self.engine.run_job(
                self.job_for(spec, prefetcher_name, system, prefetcher_params)
            )
        return RunResult(
            spec=spec, prefetcher=prefetcher_name, stats=stats, baseline=baseline
        )

    def run_grid(
        self,
        specs: Iterable[TraceSpec],
        prefetchers: Sequence[str],
        system: Optional[SystemConfig] = None,
    ) -> List[RunResult]:
        """Simulate every (trace, prefetcher) combination.

        The whole grid — baselines included — is submitted to the engine as
        one batch, so a parallel executor can overlap every cell.
        """
        system = system if system is not None else self.system
        specs = list(specs)

        jobs: List[SimulationJob] = []
        for spec in specs:
            jobs.append(self.job_for(spec, "none", system))
            for prefetcher_name in prefetchers:
                if prefetcher_name not in ("none", None):
                    jobs.append(self.job_for(spec, prefetcher_name, system))
        stats_list = self.engine.run_jobs(jobs)

        results: List[RunResult] = []
        cursor = 0
        for spec in specs:
            baseline = stats_list[cursor]
            cursor += 1
            for prefetcher_name in prefetchers:
                if prefetcher_name in ("none", None):
                    stats = baseline
                else:
                    stats = stats_list[cursor]
                    cursor += 1
                results.append(
                    RunResult(
                        spec=spec,
                        prefetcher=prefetcher_name,
                        stats=stats,
                        baseline=baseline,
                    )
                )
        return results

    def run_suites(
        self,
        suites: Sequence[str],
        prefetchers: Sequence[str],
        system: Optional[SystemConfig] = None,
    ) -> List[RunResult]:
        """Simulate a grid over whole benchmark suites (scaled selection)."""
        specs: List[TraceSpec] = []
        for suite in suites:
            specs.extend(self.scale.select(trace_specs_for_suite(suite)))
        return self.run_grid(specs, prefetchers, system)
