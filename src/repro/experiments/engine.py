"""The experiment engine: cache-aware, deduplicating job dispatch.

:class:`ExperimentEngine` sits between the experiment layer (runner,
figures, sweeps) and the executors.  For every batch it:

1. computes each job's deterministic content key;
2. answers duplicates and previously-seen jobs from an in-process memo
   (figures 6/7/8 share one grid — it is simulated once);
3. answers remaining jobs from the persistent :class:`ResultCache`;
4. dispatches the true misses to the configured executor in submission
   order and stores their results.

The returned list always lines up 1:1 with the submitted jobs, so callers
are oblivious to which of the three tiers served each result.

Partial failure.  The executors retry crashed/hung/erroring jobs; a job
that exhausts its retries comes back as a structured
:class:`~repro.experiments.executors.JobFailure` occupying its slot.
Under ``strict=False`` (the default — figures should render the 63 cells
that worked, not abort over the one that did not) failures are returned
in-slot, never memoized and never cached, so a later batch retries them
from scratch.  Under ``strict=True`` the batch raises
:class:`~repro.experiments.executors.BatchExecutionError` after caching
the successes.  The engine's counters record retries, worker crashes,
timeouts and cache quarantines so chaos runs can prove exactly what they
survived.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.cache import ResultCache, cache_enabled_by_default
from repro.experiments.executors import (
    BatchExecutionError,
    BatchOutcome,
    Executor,
    JobFailure,
    RetryPolicy,
    SerialExecutor,
    make_executor,
)
from repro.experiments.faults import FaultsArg, resolve_fault_plan
from repro.experiments.jobs import AnyJob, JobResult

#: What one engine result slot holds under ``strict=False``.
EngineResult = Union[JobResult, JobFailure]


class ExperimentEngine:
    """Runs simulation jobs (single-core or mix) through memo → persistent
    cache → executor."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        salt: str = "",
        strict: bool = False,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.salt = salt
        self.strict = strict
        self._memo: Dict[str, JobResult] = {}
        #: Number of jobs actually simulated (executor dispatches).
        self.simulations_run = 0
        #: Number of jobs answered by the in-process memo (incl. duplicates).
        self.memo_hits = 0
        #: Executor re-submissions beyond first attempts (fault recovery).
        self.retries = 0
        #: Worker-pool crash events survived.
        self.crashes = 0
        #: Hung jobs reclaimed by the per-job timeout.
        self.timeouts = 0
        #: Every failure slot ever returned (for reports; not memoized).
        self.job_failures: List[JobFailure] = []

    # ------------------------------------------------------------------ #
    def run_job(self, job: AnyJob, strict: Optional[bool] = None) -> EngineResult:
        """Run a single job (convenience wrapper around :meth:`run_jobs`)."""
        return self.run_jobs([job], strict=strict)[0]

    def run_jobs(
        self, jobs: Sequence[AnyJob], strict: Optional[bool] = None
    ) -> List[EngineResult]:
        """Run a batch of jobs; result ``i`` corresponds to ``jobs[i]``.

        ``strict=None`` defers to the engine-level default.  Failure slots
        are batch-local: they are handed back (or raised, under strict)
        but never enter the memo or the persistent cache, so re-running
        the batch retries exactly the failed cells.
        """
        strict = self.strict if strict is None else strict
        jobs = list(jobs)
        keys = [job.key(self.salt) for job in jobs]

        pending_jobs: List[AnyJob] = []
        pending_keys: List[str] = []
        scheduled = set()
        for job, key in zip(jobs, keys):
            if key in self._memo:
                self.memo_hits += 1
                continue
            if key in scheduled:
                # An intra-batch duplicate: it will be answered from the memo
                # once the first occurrence simulates, so count it as one.
                self.memo_hits += 1
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self._memo[key] = cached
                continue
            scheduled.add(key)
            pending_jobs.append(job)
            pending_keys.append(key)

        failed: Dict[str, JobFailure] = {}
        if pending_jobs:
            try:
                outcome = self._dispatch(pending_jobs)
            except KeyboardInterrupt:
                # An interrupted parallel batch may have left half-written
                # temp files behind (the publish itself is atomic, the temp
                # is the only debris); sweep before propagating.
                if self.cache is not None:
                    self.cache.sweep_tmp()
                raise
            self.simulations_run += len(pending_jobs)
            self.retries += outcome.retries
            self.crashes += outcome.crashes
            self.timeouts += outcome.timeouts
            for key, slot in zip(pending_keys, outcome.results):
                if isinstance(slot, JobFailure):
                    failed[key] = slot
                    self.job_failures.append(slot)
                    continue
                self._memo[key] = slot
                if self.cache is not None:
                    self.cache.put(key, slot)
            if strict and failed:
                raise BatchExecutionError(list(failed.values()))

        return [
            self._memo[key] if key in self._memo else failed[key] for key in keys
        ]

    def _dispatch(self, pending_jobs: List[AnyJob]) -> BatchOutcome:
        """Run the true misses through the executor's richest interface."""
        run_detailed = getattr(self.executor, "run_detailed", None)
        if run_detailed is not None:
            return run_detailed(pending_jobs)
        # Bare `run` contract (custom executor): failures surface as
        # exceptions there, so a completed call means all slots are stats.
        return BatchOutcome(results=list(self.executor.run(pending_jobs)))

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Hit/miss/simulation/fault-recovery counters for reporting and tests."""
        counters = {
            "simulations_run": self.simulations_run,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache.hits if self.cache is not None else 0,
            "cache_misses": self.cache.misses if self.cache is not None else 0,
            "cache_stores": self.cache.stores if self.cache is not None else 0,
            "cache_quarantined": (
                self.cache.quarantined if self.cache is not None else 0
            ),
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "job_failures": len(self.job_failures),
        }
        return counters

    def reset_counters(self) -> None:
        """Zero every counter (the memo itself is kept)."""
        self.simulations_run = 0
        self.memo_hits = 0
        self.retries = 0
        self.crashes = 0
        self.timeouts = 0
        self.job_failures = []
        if self.cache is not None:
            self.cache.hits = 0
            self.cache.misses = 0
            self.cache.stores = 0
            self.cache.quarantined = 0
            self.cache.store_errors = 0


def build_engine(
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: Optional[bool] = None,
    salt: str = "",
    retries: Optional[int] = None,
    job_timeout: Optional[float] = None,
    faults: FaultsArg = None,
    strict: bool = False,
) -> ExperimentEngine:
    """Standard engine construction shared by the runner, sweeps and CLI.

    ``jobs=None``/``1`` selects serial execution; ``use_cache=None`` defers
    to the ``REPRO_CACHE`` environment variable (cache on by default).
    ``retries`` is total attempts per job (``None`` = the
    :class:`RetryPolicy` default), ``job_timeout`` the per-job wall-clock
    bound in the pool path, and ``faults`` a chaos plan/spec (``None``
    defers to ``REPRO_FAULT_PLAN``) applied to both the executor and the
    cache.
    """
    if use_cache is None:
        use_cache = cache_enabled_by_default()
    plan = resolve_fault_plan(faults)
    cache = ResultCache(cache_dir, faults=plan if plan is not None else "off") if use_cache else None
    retry = RetryPolicy(max_attempts=retries) if retries is not None else None
    executor = make_executor(
        jobs, retry=retry, job_timeout=job_timeout, faults=plan if plan is not None else "off"
    )
    return ExperimentEngine(executor=executor, cache=cache, salt=salt, strict=strict)
