"""The experiment engine: cache-aware, deduplicating job dispatch.

:class:`ExperimentEngine` sits between the experiment layer (runner,
figures, sweeps) and the executors.  For every batch it:

1. computes each job's deterministic content key;
2. answers duplicates and previously-seen jobs from an in-process memo
   (figures 6/7/8 share one grid — it is simulated once);
3. answers remaining jobs from the persistent :class:`ResultCache`;
4. dispatches the true misses to the configured executor in submission
   order and stores their results.

The returned list always lines up 1:1 with the submitted jobs, so callers
are oblivious to which of the three tiers served each result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.cache import ResultCache, cache_enabled_by_default
from repro.experiments.executors import Executor, SerialExecutor, make_executor
from repro.experiments.jobs import AnyJob, JobResult


class ExperimentEngine:
    """Runs simulation jobs (single-core or mix) through memo → persistent
    cache → executor."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        salt: str = "",
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.salt = salt
        self._memo: Dict[str, JobResult] = {}
        #: Number of jobs actually simulated (executor dispatches).
        self.simulations_run = 0
        #: Number of jobs answered by the in-process memo (incl. duplicates).
        self.memo_hits = 0

    # ------------------------------------------------------------------ #
    def run_job(self, job: AnyJob) -> JobResult:
        """Run a single job (convenience wrapper around :meth:`run_jobs`)."""
        return self.run_jobs([job])[0]

    def run_jobs(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Run a batch of jobs; result ``i`` corresponds to ``jobs[i]``."""
        jobs = list(jobs)
        keys = [job.key(self.salt) for job in jobs]

        pending_jobs: List[AnyJob] = []
        pending_keys: List[str] = []
        scheduled = set()
        for job, key in zip(jobs, keys):
            if key in self._memo:
                self.memo_hits += 1
                continue
            if key in scheduled:
                # An intra-batch duplicate: it will be answered from the memo
                # once the first occurrence simulates, so count it as one.
                self.memo_hits += 1
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self._memo[key] = cached
                continue
            scheduled.add(key)
            pending_jobs.append(job)
            pending_keys.append(key)

        if pending_jobs:
            results = self.executor.run(pending_jobs)
            self.simulations_run += len(pending_jobs)
            for key, stats in zip(pending_keys, results):
                self._memo[key] = stats
                if self.cache is not None:
                    self.cache.put(key, stats)

        return [self._memo[key] for key in keys]

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """Hit/miss/simulation counters for reporting and tests."""
        counters = {
            "simulations_run": self.simulations_run,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache.hits if self.cache is not None else 0,
            "cache_misses": self.cache.misses if self.cache is not None else 0,
            "cache_stores": self.cache.stores if self.cache is not None else 0,
        }
        return counters

    def reset_counters(self) -> None:
        """Zero every counter (the memo itself is kept)."""
        self.simulations_run = 0
        self.memo_hits = 0
        if self.cache is not None:
            self.cache.hits = 0
            self.cache.misses = 0
            self.cache.stores = 0


def build_engine(
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: Optional[bool] = None,
    salt: str = "",
) -> ExperimentEngine:
    """Standard engine construction shared by the runner, sweeps and CLI.

    ``jobs=None``/``1`` selects serial execution; ``use_cache=None`` defers
    to the ``REPRO_CACHE`` environment variable (cache on by default).
    """
    if use_cache is None:
        use_cache = cache_enabled_by_default()
    cache = ResultCache(cache_dir) if use_cache else None
    return ExperimentEngine(executor=make_executor(jobs), cache=cache, salt=salt)
