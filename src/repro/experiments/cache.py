"""Persistent, crash-safe on-disk cache of simulation results.

Entries are JSON files keyed by the job's content hash (see
:meth:`repro.experiments.jobs.SimulationJob.key`), sharded into
two-character prefix directories.  Values round-trip through
:meth:`repro.sim.stats.SimulationStats.to_dict`, which preserves every
counter exactly (Python's JSON encoder round-trips ints and floats
bit-exactly), so a cache hit is indistinguishable from a fresh simulation.

Crash safety and integrity — groundwork for the shared multi-machine
store on the ROADMAP:

* **Atomic publish.**  An entry is written to a same-directory temp file,
  flushed and fsync'd, then ``os.replace``'d into place; readers can
  never observe a half-written entry produced by *this* writer, no matter
  where a crash lands.
* **Checksummed envelope.**  The payload carries a sha256 over its own
  canonical encoding, so torn writes by non-atomic writers, bit flips and
  truncation are *detected* on read rather than deserialized into wrong
  numbers.  Entries from older repo versions (no checksum) are still
  accepted.
* **Quarantine, not deletion.**  A corrupt entry is moved to
  ``<root>/quarantine/`` and treated as a miss — the run re-simulates and
  republishes, while the damaged bytes stay available for post-mortem
  (``repro cache verify`` / ``repro cache info`` report them).
* **Concurrent-writer safety.**  The payload bytes are a pure function of
  ``(key, stats)`` via canonical JSON, and the stats themselves are a
  pure function of the key's content — two racing writers publish
  bit-identical files, so last-write-wins is indistinguishable from
  first-write-wins.

The default location is ``.repro-cache/`` in the current directory and can
be redirected with the ``REPRO_CACHE_DIR`` environment variable or disabled
entirely with ``REPRO_CACHE=0``.  A :class:`~repro.experiments.faults.FaultPlan`
(``faults=`` knob / ``REPRO_FAULT_PLAN``) can inject transient I/O errors
and post-publish corruption at the named sites for chaos testing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.experiments.faults import FaultsArg, corrupt_payload, resolve_fault_plan
from repro.experiments.jobs import ENGINE_SCHEMA_VERSION, JobResult
from repro.hashing import canonical_json, content_hash
from repro.sim.stats import MultiCoreStats, SimulationStats

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the cache when set to ``0``/``off``/``no``.
CACHE_ENABLE_ENV = "REPRO_CACHE"

DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the cache root holding quarantined (corrupt) entries.
QUARANTINE_DIR = "quarantine"


def cache_enabled_by_default() -> bool:
    """Whether the persistent cache should be used absent an explicit choice."""
    return os.environ.get(CACHE_ENABLE_ENV, "1").lower() not in ("0", "off", "no", "false")


def default_cache_dir() -> Path:
    """Cache directory from the environment, or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class CorruptEntry(ValueError):
    """A cache entry whose bytes fail structural or checksum validation."""


def encode_entry(key: str, stats: JobResult) -> bytes:
    """The exact bytes published for ``(key, stats)``.

    Canonical JSON of a self-checksummed envelope.  Determinism here is a
    correctness property, not a nicety: two concurrent writers for the
    same content key produce *identical* bytes, which is what makes the
    cache safe to share between racing processes (and, later, machines)
    without locking.
    """
    body = {
        "schema": ENGINE_SCHEMA_VERSION,
        "key": key,
        "kind": "mix" if isinstance(stats, MultiCoreStats) else "single",
        "stats": stats.to_dict(),
    }
    envelope = dict(body)
    envelope["sha256"] = content_hash(body)
    return canonical_json(envelope).encode("utf-8")


def decode_entry(data: bytes, key: Optional[str] = None) -> JobResult:
    """Validate and deserialize entry bytes; raise :class:`CorruptEntry`.

    Validation layers, cheapest first: JSON well-formedness, envelope
    shape, key match (when the expected key is known), then the sha256
    checksum over the re-canonicalized body.  Pre-checksum entries
    (``sha256`` absent) from older repo versions are accepted on their
    structural checks alone.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptEntry(f"undecodable entry: {error}") from error
    if not isinstance(payload, dict) or "stats" not in payload:
        raise CorruptEntry("entry is not a result envelope")
    if key is not None and payload.get("key") not in (None, key):
        raise CorruptEntry(
            f"entry key mismatch: expected {key}, found {payload.get('key')}"
        )
    checksum = payload.get("sha256")
    if checksum is not None:
        body = {k: v for k, v in payload.items() if k != "sha256"}
        if content_hash(body) != checksum:
            raise CorruptEntry("checksum mismatch")
    try:
        if payload.get("kind", "single") == "mix":
            return MultiCoreStats.from_dict(payload["stats"])
        return SimulationStats.from_dict(payload["stats"])
    except (ValueError, KeyError, TypeError) as error:
        raise CorruptEntry(f"stats payload does not deserialize: {error}") from error


class ResultCache:
    """Content-addressed store of :class:`SimulationStats` keyed by job hash."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        faults: FaultsArg = "off",
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.faults = resolve_fault_plan(faults)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.store_errors = 0

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """File path storing the entry for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_root(self) -> Path:
        """Directory receiving corrupt entries."""
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never delete evidence)."""
        target = self.quarantine_root / path.name
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_root / f"{path.stem}.{suffix}{path.suffix}"
            os.replace(path, target)
        except OSError:
            # Quarantine is best-effort forensics; if the move itself fails
            # (read-only fs, races), fall back to unlinking so the corrupt
            # bytes cannot poison the next read.
            try:
                path.unlink()
            except OSError:  # repro-lint: waive R6 — entry already gone or fs read-only; miss either way
                pass
        self.quarantined += 1

    def get(self, key: str) -> Optional[JobResult]:
        """Load the cached result for ``key``, or ``None`` on a miss.

        Entries are kind-tagged: single-core jobs round-trip through
        :class:`SimulationStats`, multi-core mix jobs through
        :class:`MultiCoreStats`.  Corrupt entries are quarantined and
        treated as misses so a damaged cache heals itself instead of
        failing every run; transient read errors are plain misses.
        """
        path = self.path_for(key)
        try:
            if self.faults is not None:
                self.faults.maybe_os_error("cache.get.eio", key)
            data = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            # Transient read failure: miss, re-simulate; nothing on disk is
            # known-bad, so no quarantine.
            self.misses += 1
            return None
        try:
            stats = decode_entry(data, key=key)
        except CorruptEntry:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: JobResult) -> None:
        """Store ``stats`` under ``key`` (atomic publish, best effort).

        Write-to-temp + flush + fsync + ``os.replace`` guarantees readers
        see either the complete entry or nothing.  I/O errors degrade to a
        no-op cache (counted in ``store_errors``) rather than failing the
        run that produced the result.
        """
        path = self.path_for(key)
        data = encode_entry(key, stats)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if self.faults is not None:
                self.faults.maybe_os_error("cache.put.eio", key)
                self.faults.maybe_os_error("cache.put.enospc", key)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:  # repro-lint: waive R6 — temp already renamed or gone; original error re-raised below
                    pass
                raise
            self._fsync_dir(path.parent)
        except OSError:
            # A read-only or full filesystem degrades to a no-op cache.
            self.store_errors += 1
            return
        self.stores += 1
        self._inject_corruption(path, key)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Best-effort fsync of the entry's directory (durable rename)."""
        try:
            fd = os.open(str(directory), os.O_RDONLY)
        except OSError:  # repro-lint: waive R6 — platform without dir fds; rename is still atomic
            return
        try:
            os.fsync(fd)
        except OSError:  # repro-lint: waive R6 — some filesystems reject dir fsync; durability only weakens
            pass
        finally:
            os.close(fd)

    def _inject_corruption(self, path: Path, key: str) -> None:
        """Chaos hook: damage the just-published entry when the plan says so.

        Models a torn write by a non-atomic (legacy/foreign) writer or
        media corruption — failure modes that atomic publish cannot rule
        out on a *shared* store, which is exactly what quarantine-on-read
        exists to absorb.
        """
        if self.faults is None:
            return
        for site, mode in (("cache.torn", "torn"), ("cache.bitflip", "bitflip")):
            if self.faults.should_fire(site, key) is not None:
                try:
                    damaged = corrupt_payload(path.read_bytes(), mode, self.faults, key)
                    path.write_bytes(damaged)
                except OSError:  # repro-lint: waive R6 — injection is best-effort chaos, not a data path
                    pass
                return

    # ------------------------------------------------------------------ #
    def _entry_files(self):
        """Live entry files (excludes quarantine and orphaned temp files)."""
        if not self.root.exists():
            return
        for entry in self.root.glob("*/*.json"):
            if entry.parent.name == QUARANTINE_DIR:
                continue
            if entry.name.startswith(".tmp-"):
                continue
            yield entry

    def sweep_tmp(self) -> int:
        """Remove orphaned ``.tmp-*`` files (crashed/interrupted writers)."""
        removed = 0
        if not self.root.exists():
            return removed
        for orphan in sorted(self.root.glob("*/.tmp-*")):
            try:
                orphan.unlink()
                removed += 1
            except OSError:  # repro-lint: waive R6 — another sweeper raced us; the orphan is gone either way
                pass
        return removed

    def verify(self) -> Dict[str, int]:
        """Scan every entry, quarantine corruption, sweep orphaned temps.

        Returns a report of what was found; never raises on bad entries —
        the whole point is that a damaged store degrades to misses.
        """
        scanned = ok = legacy = quarantined = 0
        for entry in sorted(self._entry_files()):
            scanned += 1
            try:
                data = entry.read_bytes()
                payload = json.loads(data.decode("utf-8"))
                is_legacy = isinstance(payload, dict) and "sha256" not in payload
                decode_entry(data, key=entry.stem)
            except (OSError, ValueError, KeyError, TypeError):
                self._quarantine(entry)
                quarantined += 1
                continue
            ok += 1
            if is_legacy:
                legacy += 1
        return {
            "scanned": scanned,
            "ok": ok,
            "legacy": legacy,
            "quarantined": quarantined,
            "tmp_removed": self.sweep_tmp(),
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed.

        Quarantined corpses and orphaned temp files are removed too but
        not counted — they were never live entries.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for entry in sorted(self.root.glob("*/*")):
            is_entry = (
                entry.suffix == ".json"
                and not entry.name.startswith(".tmp-")
                and entry.parent.name != QUARANTINE_DIR
            )
            try:
                entry.unlink()
                if is_entry:
                    removed += 1
            except OSError:  # repro-lint: waive R6 — raced or read-only; clear() is best-effort
                pass
        for shard in sorted(self.root.glob("*")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:  # repro-lint: waive R6 — non-empty (foreign files) or raced; harmless
                    pass
        return removed

    def info(self) -> Dict[str, object]:
        """Summary of the on-disk state plus this process's counters."""
        entries = 0
        total_bytes = 0
        tmp_files = 0
        for entry in self._entry_files():
            entries += 1
            try:
                total_bytes += entry.stat().st_size
            except OSError:  # repro-lint: waive R6 — entry vanished mid-scan; size stays approximate
                pass
        quarantine_entries = 0
        quarantine_bytes = 0
        if self.quarantine_root.exists():
            for corpse in self.quarantine_root.glob("*.json"):
                quarantine_entries += 1
                try:
                    quarantine_bytes += corpse.stat().st_size
                except OSError:  # repro-lint: waive R6 — corpse vanished mid-scan; size stays approximate
                    pass
        if self.root.exists():
            tmp_files = sum(1 for _ in self.root.glob("*/.tmp-*"))
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "quarantine_entries": quarantine_entries,
            "quarantine_bytes": quarantine_bytes,
            "tmp_files": tmp_files,
            "schema": ENGINE_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "store_errors": self.store_errors,
        }
