"""Persistent on-disk cache of simulation results.

Entries are JSON files keyed by the job's content hash (see
:meth:`repro.experiments.jobs.SimulationJob.key`), sharded into
two-character prefix directories.  Values round-trip through
:meth:`repro.sim.stats.SimulationStats.to_dict`, which preserves every
counter exactly (Python's JSON encoder round-trips ints and floats
bit-exactly), so a cache hit is indistinguishable from a fresh simulation.

The default location is ``.repro-cache/`` in the current directory and can
be redirected with the ``REPRO_CACHE_DIR`` environment variable or disabled
entirely with ``REPRO_CACHE=0``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.experiments.jobs import ENGINE_SCHEMA_VERSION, JobResult
from repro.sim.stats import MultiCoreStats, SimulationStats

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable disabling the cache when set to ``0``/``off``/``no``.
CACHE_ENABLE_ENV = "REPRO_CACHE"

DEFAULT_CACHE_DIR = ".repro-cache"


def cache_enabled_by_default() -> bool:
    """Whether the persistent cache should be used absent an explicit choice."""
    return os.environ.get(CACHE_ENABLE_ENV, "1").lower() not in ("0", "off", "no", "false")


def default_cache_dir() -> Path:
    """Cache directory from the environment, or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class ResultCache:
    """Content-addressed store of :class:`SimulationStats` keyed by job hash."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """File path storing the entry for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[JobResult]:
        """Load the cached result for ``key``, or ``None`` on a miss.

        Entries are kind-tagged: single-core jobs round-trip through
        :class:`SimulationStats`, multi-core mix jobs through
        :class:`MultiCoreStats`.  Corrupt or unreadable entries are treated
        as misses and removed so a damaged cache heals itself instead of
        failing every run.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("kind", "single") == "mix":
                stats = MultiCoreStats.from_dict(payload["stats"])
            else:
                stats = SimulationStats.from_dict(payload["stats"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: JobResult) -> None:
        """Store ``stats`` under ``key`` (atomic write, best effort)."""
        path = self.path_for(key)
        payload = {
            "schema": ENGINE_SCHEMA_VERSION,
            "key": key,
            "kind": "mix" if isinstance(stats, MultiCoreStats) else "single",
            "stats": stats.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full filesystem degrades to a no-op cache.
            return
        self.stores += 1

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in sorted(self.root.glob("*/*.json")):
            orphaned_tmp = entry.name.startswith(".tmp-")
            try:
                entry.unlink()
                if not orphaned_tmp:  # crash leftovers aren't cache entries
                    removed += 1
            except OSError:
                pass
        for shard in sorted(self.root.glob("*")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

    def info(self) -> Dict[str, object]:
        """Summary of the on-disk state plus this process's hit counters."""
        entries = 0
        total_bytes = 0
        if self.root.exists():
            for entry in self.root.glob("*/*.json"):
                if entry.name.startswith(".tmp-"):
                    continue  # orphan from a crashed put(), not an entry
                entries += 1
                try:
                    total_bytes += entry.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "schema": ENGINE_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
