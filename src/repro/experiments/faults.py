"""Deterministic fault injection for the experiment engine.

The fault-tolerance layer (retrying executors, the crash-safe result
cache) is only trustworthy if every failure mode it claims to survive can
be *produced on demand*, repeatably, in any test or CI lane.  A
:class:`FaultPlan` does exactly that: it names the failure modes to
inject — worker crashes, hangs, torn or bit-flipped cache payloads,
transient ``EIO``/``ENOSPC`` — and decides *deterministically* whether a
given operation fails.

Determinism matters more than realism here.  A decision is a pure
function of ``(seed, site, token)`` — the token is a content key (job
hash or cache key), never a wall clock or an RNG stream — so the same
plan run against the same batch injects the same faults regardless of
worker placement, scheduling order or process count.  Chaos runs are
therefore *reproducible*: a failure found under ``seed=1337`` can be
replayed under ``seed=1337``.

Injection sites (the only places the engine consults a plan):

========================  ==================================================
site                      effect when it fires
========================  ==================================================
``worker.crash``          pool worker hard-exits (``os._exit``) mid-job —
                          simulates a ``kill -9``'d worker
``worker.hang``           pool worker sleeps ``seconds`` before the job —
                          simulates a wedged worker (reclaimed by the
                          executor's per-job timeout)
``worker.error``          raises :class:`FaultInjected` from the job —
                          simulates a transient in-worker failure
``cache.put.eio``         ``OSError(EIO)`` from the cache write path
``cache.put.enospc``      ``OSError(ENOSPC)`` from the cache write path
``cache.get.eio``         ``OSError(EIO)`` from the cache read path
``cache.torn``            the just-published cache entry is truncated in
                          place — simulates a torn write by a non-atomic
                          writer or a crash mid-write
``cache.bitflip``         one bit of the published entry is flipped —
                          simulates media corruption
``main.interrupt``        raises ``KeyboardInterrupt`` in the parallel
                          executor's harvest loop — simulates Ctrl-C
                          landing mid-batch
========================  ==================================================

Crash and hang sites only ever fire inside *pool worker processes* — a
serial executor never injects them (they would kill or stall the test
process itself); ``worker.error`` fires in both paths.

Activation.  Every fault-aware component takes a ``faults=`` knob
accepting a plan, a spec string, ``"off"`` (explicitly disabled) or
``None`` — the default, which defers to the ``REPRO_FAULT_PLAN``
environment variable so a whole test run or CI lane can be put under
chaos without touching any call site.

Spec grammar (the env-var / CLI encoding)::

    seed=1337;worker.crash:rate=0.35;worker.hang:rate=0.1,seconds=2

Segments are ``;``-separated.  ``seed=N`` seeds the decision hash; every
other segment is ``site`` or ``site:key=value,...`` with per-rule knobs:

* ``rate`` — fire probability in ``[0, 1]`` (deterministic hash
  threshold, default 1.0);
* ``attempts`` — fire only while the job's attempt number is <= this
  (default 1, so retries succeed *by construction*; 0 = every attempt);
* ``max_fires`` — per-process cap on total fires (default 0 = unlimited);
* ``seconds`` — hang duration for ``worker.hang`` (default 30).
"""

from __future__ import annotations

import errno
import hashlib
import os
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

#: Environment variable holding a fault-plan spec; consulted whenever a
#: component's ``faults=`` knob is left at ``None``.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a worker killed by ``worker.crash`` (distinctive on
#: purpose, so a real segfault is not mistaken for an injected crash).
CRASH_EXIT_CODE = 173

#: Every recognised injection-point name.
FAULT_SITES = (
    "worker.crash",
    "worker.hang",
    "worker.error",
    "cache.put.eio",
    "cache.put.enospc",
    "cache.get.eio",
    "cache.torn",
    "cache.bitflip",
    "main.interrupt",
)

#: Sites raising a transient ``OSError`` mapped to their errno.
_OS_ERROR_SITES = {
    "cache.put.eio": errno.EIO,
    "cache.put.enospc": errno.ENOSPC,
    "cache.get.eio": errno.EIO,
}


class FaultInjected(RuntimeError):
    """A transient error raised on purpose by a ``worker.error`` fault."""


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One armed injection site plus its firing knobs."""

    site: str
    rate: float = 1.0
    attempts: int = 1
    max_fires: int = 0
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {', '.join(FAULT_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.attempts < 0 or self.max_fires < 0 or self.seconds < 0:
            raise ValueError("attempts/max_fires/seconds must be >= 0")

    def spec(self) -> str:
        """This rule's segment of a plan spec (non-default knobs only)."""
        params = []
        if self.rate != 1.0:
            params.append(f"rate={self.rate:g}")
        if self.attempts != 1:
            params.append(f"attempts={self.attempts}")
        if self.max_fires:
            params.append(f"max_fires={self.max_fires}")
        if self.seconds != 30.0:
            params.append(f"seconds={self.seconds:g}")
        return self.site + (":" + ",".join(params) if params else "")


_RULE_FIELDS = {
    "rate": float,
    "attempts": int,
    "max_fires": int,
    "seconds": float,
}


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    The plan itself is cheap, picklable-by-spec (``to_spec`` /
    ``from_spec`` round-trip exactly) and carries one piece of mutable
    state: a per-process :class:`~collections.Counter` of fires per site,
    which both enforces ``max_fires`` and gives tests something concrete
    to assert against.
    """

    __slots__ = ("seed", "rules", "fired")

    def __init__(self, seed: int = 0, rules: Iterable[FaultRule] = ()) -> None:
        self.seed = int(seed)
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate fault site {rule.site!r}")
            self.rules[rule.site] = rule
        self.fired: Counter = Counter()

    # ------------------------------------------------------------------ #
    # Spec round-trip
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``seed=N;site:key=value,...`` grammar (see module doc)."""
        seed = 0
        rules = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[len("seed="):], 0)
                except ValueError:
                    raise ValueError(
                        f"fault-plan seed must be an integer, got {segment!r}"
                    ) from None
                continue
            site, _, params_text = segment.partition(":")
            site = site.strip()
            params: Dict[str, object] = {}
            if params_text.strip():
                for pair in params_text.split(","):
                    key, sep, raw = pair.partition("=")
                    key = key.strip()
                    if not sep or key not in _RULE_FIELDS:
                        raise ValueError(
                            f"bad fault rule parameter {pair!r} for site "
                            f"{site!r}; known: {', '.join(_RULE_FIELDS)}"
                        )
                    try:
                        params[key] = _RULE_FIELDS[key](raw.strip())
                    except ValueError:
                        raise ValueError(
                            f"bad value for fault parameter {key!r}: {raw!r}"
                        ) from None
            rules.append(FaultRule(site=site, **params))  # type: ignore[arg-type]
        return cls(seed=seed, rules=rules)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan armed by ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
        spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not spec or spec.lower() == "off":
            return None
        return cls.from_spec(spec)

    def to_spec(self) -> str:
        """Canonical spec string (stable ordering; exact round-trip)."""
        segments = [f"seed={self.seed}"]
        segments.extend(self.rules[site].spec() for site in sorted(self.rules))
        return ";".join(segments)

    # ------------------------------------------------------------------ #
    # Firing decisions
    # ------------------------------------------------------------------ #
    def fraction(self, site: str, token: str) -> float:
        """Deterministic uniform-ish value in ``[0, 1)`` for a decision."""
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{token}".encode("utf-8")
        ).hexdigest()
        return int(digest[:12], 16) / float(16 ** 12)

    def should_fire(
        self, site: str, token: str, attempt: int = 1
    ) -> Optional[FaultRule]:
        """The armed rule for ``site`` if this operation should fail.

        ``token`` is the operation's content identity (job key, cache
        key); ``attempt`` is the 1-based retry count where one exists.
        Increments the per-process fire counter on a hit.
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        if rule.attempts and attempt > rule.attempts:
            return None
        if rule.max_fires and self.fired[site] >= rule.max_fires:
            return None
        if rule.rate < 1.0 and self.fraction(site, token) >= rule.rate:
            return None
        self.fired[site] += 1
        return rule

    def fire_count(self, site: str) -> int:
        """How often ``site`` has fired in this process."""
        return self.fired[site]

    def maybe_os_error(self, site: str, token: str) -> None:
        """Raise the site's transient ``OSError`` when the plan says so."""
        rule = self.should_fire(site, token)
        if rule is not None:
            code = _OS_ERROR_SITES[site]
            raise OSError(code, f"{os.strerror(code)} [injected: {site}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_spec()!r})"


#: What a ``faults=`` knob accepts: a plan, a spec string, ``"off"``, or
#: ``None`` (defer to :data:`FAULT_PLAN_ENV`).
FaultsArg = Union[None, str, FaultPlan]


def resolve_fault_plan(faults: FaultsArg) -> Optional[FaultPlan]:
    """Normalise a ``faults=`` knob into a plan (or ``None`` = disabled).

    ``None`` defers to the environment; the explicit strings ``""`` and
    ``"off"`` disable injection even when ``REPRO_FAULT_PLAN`` is set —
    that is how tests pin a fault-free reference run inside a chaos lane.
    """
    if faults is None:
        return FaultPlan.from_env()
    if isinstance(faults, FaultPlan):
        return faults
    spec = str(faults).strip()
    if not spec or spec.lower() == "off":
        return None
    return FaultPlan.from_spec(spec)


def corrupt_payload(data: bytes, mode: str, plan: FaultPlan, token: str) -> bytes:
    """The deterministically damaged form of ``data`` for a fired fault.

    ``"torn"`` keeps a prefix (a write that stopped partway);
    ``"bitflip"`` flips one payload bit chosen by the plan's hash.
    """
    if not data:
        return data
    if mode == "torn":
        return data[: max(1, len(data) // 2)]
    if mode == "bitflip":
        position = int(
            hashlib.sha256(
                f"{plan.seed}|bitflip-at|{token}".encode("utf-8")
            ).hexdigest()[:12],
            16,
        ) % (len(data) * 8)
        flipped = bytearray(data)
        flipped[position // 8] ^= 1 << (position % 8)
        return bytes(flipped)
    raise ValueError(f"unknown corruption mode {mode!r}")
