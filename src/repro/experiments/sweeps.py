"""System-configuration sweeps (Fig. 16).

The paper sweeps three system parameters while keeping the workloads fixed:
DRAM transfer rate (800-12800 MT/s), LLC size per core (0.5-8 MB) and L2C
size (128 KB-1.5 MB).  Each sweep reruns the prefetcher comparison under the
modified :class:`~repro.sim.config.SystemConfig` and reports geometric-mean
speedups over the *matching* no-prefetch baseline (the baseline is re-run
for every configuration, as in the paper).

All points of a sweep share one :class:`ExperimentEngine`, so traces and
results are cached across configurations, duplicate jobs are deduplicated,
and ``jobs > 1`` parallelizes each point's grid; job keys include the full
system configuration, so distinct sweep points can never share a result.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.metrics import summarize_runs
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.sim.config import SystemConfig, default_system_config
from repro.workloads.suites import MAIN_SUITES

#: Prefetchers compared in the sensitivity study.
SWEEP_PREFETCHERS = ("spp-ppf", "vberti", "bingo", "dspatch", "pmp", "gaze")

#: Paper sweep points.
DRAM_MTPS_POINTS = (800, 1600, 3200, 6400, 12800)
LLC_MB_POINTS = (0.5, 1, 2, 4, 8)
L2C_KB_POINTS = (128, 256, 512, 1024)


def _sweep_engine(
    engine: Optional[ExperimentEngine], jobs: Optional[int]
) -> ExperimentEngine:
    return engine if engine is not None else build_engine(jobs=jobs)


def _run_point(
    system: SystemConfig,
    prefetchers: Sequence[str],
    scale: Optional[RunScale],
    suites: Sequence[str],
    engine: ExperimentEngine,
) -> Dict[str, float]:
    runner = ExperimentRunner(scale=scale, system=system, engine=engine)
    results = runner.run_suites(suites, prefetchers)
    summary = summarize_runs(results)
    return {name: summary[name]["speedup"] for name in prefetchers}


def sweep_dram_bandwidth(
    points: Sequence[int] = DRAM_MTPS_POINTS,
    prefetchers: Sequence[str] = SWEEP_PREFETCHERS,
    scale: Optional[RunScale] = None,
    suites: Sequence[str] = MAIN_SUITES,
    engine: Optional[ExperimentEngine] = None,
    jobs: Optional[int] = None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 16a: speedups at varying DRAM transfer rates (MT/s)."""
    engine = _sweep_engine(engine, jobs)
    results: Dict[int, Dict[str, float]] = {}
    for mtps in points:
        base = default_system_config(1)
        system = replace(base, dram=replace(base.dram, transfer_rate_mtps=mtps))
        results[mtps] = _run_point(system, prefetchers, scale, suites, engine)
    return results


def sweep_llc_size(
    points_mb: Sequence[float] = LLC_MB_POINTS,
    prefetchers: Sequence[str] = SWEEP_PREFETCHERS,
    scale: Optional[RunScale] = None,
    suites: Sequence[str] = MAIN_SUITES,
    engine: Optional[ExperimentEngine] = None,
    jobs: Optional[int] = None,
) -> Dict[float, Dict[str, float]]:
    """Fig. 16b: speedups at varying LLC sizes per core (MB)."""
    engine = _sweep_engine(engine, jobs)
    results: Dict[float, Dict[str, float]] = {}
    for size_mb in points_mb:
        base = default_system_config(1)
        system = replace(
            base, llc=replace(base.llc, size_bytes=int(size_mb * 1024 * 1024))
        )
        results[size_mb] = _run_point(system, prefetchers, scale, suites, engine)
    return results


def sweep_l2c_size(
    points_kb: Sequence[int] = L2C_KB_POINTS,
    prefetchers: Sequence[str] = SWEEP_PREFETCHERS,
    scale: Optional[RunScale] = None,
    suites: Sequence[str] = MAIN_SUITES,
    engine: Optional[ExperimentEngine] = None,
    jobs: Optional[int] = None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 16c: speedups at varying L2C sizes (KB)."""
    engine = _sweep_engine(engine, jobs)
    results: Dict[int, Dict[str, float]] = {}
    for size_kb in points_kb:
        base = default_system_config(1)
        system = replace(
            base, l2c=replace(base.l2c, size_bytes=size_kb * 1024)
        )
        results[size_kb] = _run_point(system, prefetchers, scale, suites, engine)
    return results
