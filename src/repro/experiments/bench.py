"""Kernel-throughput benchmark suite and the on-disk BENCH trajectory.

``python -m repro bench`` runs a fixed grid of (trace, prefetcher) cases
through :func:`repro.experiments.jobs.execute_job` with timing enabled and
records the simulated-accesses-per-second of each case.  Results are written
to ``BENCH_<n>.json`` files that are committed to the repository, so the
performance of the simulation kernel becomes a first-class, regression-
guarded artifact: every perf-focused PR appends a new snapshot and CI
compares fresh numbers against the last committed baseline.

Design notes:

* The suite is *fixed* (same traces, seeds, lengths and prefetchers across
  snapshots) so accesses/sec is comparable between files; ``--quick`` runs a
  subset of the same cases — identical keys — rather than shorter traces.
* Each case takes the best of ``repeats`` runs: throughput snapshots should
  measure the kernel, not scheduler noise.
* Comparisons are per-case with a generous threshold (machines differ; the
  guard is for order-of-magnitude regressions, not single-digit drift).
"""

from __future__ import annotations

import json
import math
import platform
import re
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.jobs import ENGINE_SCHEMA_VERSION, SimulationJob, execute_job
from repro.workloads.trace import TraceSpec

#: Schema version of the BENCH_*.json files themselves.
BENCH_SCHEMA = 1

#: File-name pattern of committed benchmark snapshots.
BENCH_FILE_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Accesses per benchmark trace.  Long enough that per-run constant costs
#: (trace generation is excluded; simulator construction is not) disappear
#: into the noise, short enough that the full suite finishes in well under a
#: minute.
BENCH_TRACE_LENGTH = 40_000

#: The fixed benchmark grid: (generator, seed) x prefetcher.  ``"none"`` is
#: the raw kernel (no prefetcher attached); the three designs cover the
#: paper's main families (Gaze two-access, PMP offset-context, vBerti
#: per-PC deltas) and exercise different prefetch volumes.
BENCH_TRACES: Tuple[Tuple[str, int], ...] = (
    ("spatial", 11),
    ("streaming", 12),
    ("cloud", 13),
)
BENCH_PREFETCHERS: Tuple[str, ...] = ("none", "gaze", "pmp", "vberti")

#: ``--quick`` subset: one case per prefetcher, still spanning all three
#: trace kinds.  Keys are identical to the full suite, so quick runs are
#: directly comparable against full-suite baselines.
QUICK_CASES: Tuple[Tuple[str, int, str], ...] = (
    ("spatial", 11, "none"),
    ("spatial", 11, "gaze"),
    ("streaming", 12, "pmp"),
    ("cloud", 13, "vberti"),
)


def _case_key(generator: str, seed: int, prefetcher: str, length: int) -> str:
    return f"{generator}-s{seed}-L{length}/{prefetcher}"


def bench_cases(quick: bool = False) -> List[Tuple[str, int, str]]:
    """The (generator, seed, prefetcher) triples of the selected suite."""
    if quick:
        return list(QUICK_CASES)
    return [
        (generator, seed, prefetcher)
        for generator, seed in BENCH_TRACES
        for prefetcher in BENCH_PREFETCHERS
    ]


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    trace_length: Optional[int] = None,
    progress=None,
) -> Dict[str, object]:
    """Run the kernel-throughput suite and return a BENCH-file payload.

    ``trace_length`` defaults to :data:`BENCH_TRACE_LENGTH` (resolved at
    call time so tests can shrink the suite).  ``progress`` is an optional
    callable receiving one line per finished case (used by the CLI to
    stream results).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if trace_length is None:
        trace_length = BENCH_TRACE_LENGTH
    cases: Dict[str, Dict[str, object]] = {}
    rates: List[float] = []
    for generator, seed, prefetcher in bench_cases(quick):
        spec = TraceSpec(
            name=f"bench-{generator}-s{seed}",
            suite="bench",
            generator=generator,
            seed=seed,
            length=trace_length,
        )
        job = SimulationJob(
            spec=spec, prefetcher=prefetcher, trace_length=trace_length
        )
        best_rate = 0.0
        best_wall = math.inf
        accesses = 0
        instructions = 0
        for _ in range(repeats):
            stats = execute_job(job, record_timing=True)
            wall = float(stats.extra["wall_time_s"])
            rate = float(stats.extra["accesses_per_sec"])
            accesses = stats.demand_accesses
            instructions = stats.instructions
            if rate > best_rate:
                best_rate = rate
                best_wall = wall
        key = _case_key(generator, seed, prefetcher, trace_length)
        cases[key] = {
            "accesses": accesses,
            "instructions": instructions,
            "best_wall_s": round(best_wall, 6),
            "accesses_per_sec": round(best_rate, 1),
        }
        rates.append(best_rate)
        if progress is not None:
            progress(f"{key:40s} {best_rate:12,.0f} acc/s")
    geomean = (
        math.exp(sum(math.log(rate) for rate in rates) / len(rates))
        if rates
        else 0.0
    )
    return {
        "schema": BENCH_SCHEMA,
        "kind": "kernel-throughput",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_schema_version": ENGINE_SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "trace_length": trace_length,
        "cases": cases,
        "geomean_accesses_per_sec": round(geomean, 1),
    }


# --------------------------------------------------------------------------- #
# BENCH_<n>.json trajectory
# --------------------------------------------------------------------------- #
def bench_files(directory: str = ".") -> List[Path]:
    """Committed BENCH files in ``directory``, sorted by snapshot number."""
    root = Path(directory)
    if not root.is_dir():
        return []
    found = []
    for path in root.iterdir():
        match = BENCH_FILE_PATTERN.match(path.name)
        if match is not None:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def latest_bench_file(directory: str = ".") -> Optional[Path]:
    """The most recent BENCH snapshot in ``directory`` (None when empty)."""
    files = bench_files(directory)
    return files[-1] if files else None


def next_bench_path(directory: str = ".") -> Path:
    """The path the next snapshot should be written to (``BENCH_<n+1>``)."""
    files = bench_files(directory)
    if not files:
        return Path(directory) / "BENCH_0.json"
    last = int(BENCH_FILE_PATTERN.match(files[-1].name).group(1))
    return Path(directory) / f"BENCH_{last + 1}.json"


def write_bench_file(result: Dict[str, object], directory: str = ".") -> Path:
    """Write ``result`` as the next ``BENCH_<n>.json``; returns the path."""
    path = next_bench_path(directory)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_bench_file(path) -> Dict[str, object]:
    """Load one BENCH snapshot from disk."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_bench(
    new: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.40,
) -> Dict[str, object]:
    """Compare two snapshots over their shared cases.

    Returns a report with per-case throughput ratios (new/baseline), the
    geomean ratio, and the list of cases regressing by more than
    ``threshold`` (e.g. 0.40 = new case is slower than 60% of the baseline
    rate).  Cases present in only one snapshot are ignored — that is what
    makes ``--quick`` runs comparable against full-suite baselines.
    """
    new_cases = new.get("cases", {})
    base_cases = baseline.get("cases", {})
    shared = sorted(set(new_cases) & set(base_cases))
    ratios: Dict[str, float] = {}
    regressions: List[str] = []
    for key in shared:
        old_rate = float(base_cases[key]["accesses_per_sec"])
        new_rate = float(new_cases[key]["accesses_per_sec"])
        ratio = new_rate / old_rate if old_rate > 0 else math.inf
        ratios[key] = ratio
        if ratio < 1.0 - threshold:
            regressions.append(key)
    geomean_ratio = (
        math.exp(sum(math.log(r) for r in ratios.values()) / len(ratios))
        if ratios
        else 1.0
    )
    return {
        "shared_cases": shared,
        "ratios": ratios,
        "geomean_ratio": geomean_ratio,
        "threshold": threshold,
        "regressions": regressions,
        "ok": not regressions,
    }


def main(argv=None) -> int:  # pragma: no cover - thin wrapper for debugging
    """Allow ``python -m repro.experiments.bench`` for ad-hoc runs."""
    result = run_bench(progress=print)
    json.dump(result, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0
