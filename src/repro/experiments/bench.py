"""Simulation-throughput benchmark suite and the on-disk BENCH trajectory.

``python -m repro bench`` runs a fixed set of cases through
:func:`repro.experiments.jobs.execute_job` and records the
simulated-accesses-per-second of each.  Results are written to
``BENCH_<n>.json`` files that are committed to the repository, so the
performance of the simulation kernel becomes a first-class, regression-
guarded artifact: every perf-focused PR appends a new snapshot and CI
compares fresh numbers against the last committed baseline.

Three case kinds cover the perf-relevant execution paths:

* ``kernel`` — the original (generator, seed) x prefetcher grid over the
  single-core fast path (in-job timing, trace generation excluded via the
  per-process memo);
* ``mix`` — a fixed four-core heterogeneous mix through the multi-core
  driver, in both the ``exact`` interleaved schedule and the epoch-sharded
  schedule (timed externally; the rate counts *measured* demand accesses
  across all cores, which undercounts post-budget pressure replay — a
  consistent definition across snapshots);
* ``stream`` — a trace-file case that decodes a compressed on-disk trace on
  every pass, measuring the streaming-ingestion path end to end.

Design notes:

* The suite is *fixed* (same traces, seeds, lengths and prefetchers across
  snapshots) so accesses/sec is comparable between files; ``--quick`` runs a
  subset of the same cases — identical keys — rather than shorter traces.
* Each case takes the best of ``repeats`` runs: throughput snapshots should
  measure the kernel, not scheduler noise.
* Comparisons are per-case with a generous threshold (machines differ; the
  guard is for order-of-magnitude regressions, not single-digit drift).
  Cases present in only one snapshot are *reported* but not compared, so a
  renamed case surfaces in the ``--check`` output instead of silently
  dropping out of regression coverage.
"""

from __future__ import annotations

import json
import math
import platform
import re
import sys
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.jobs import (
    ENGINE_SCHEMA_VERSION,
    MixSimulationJob,
    SimulationJob,
    execute_job,
)
from repro.prefetchers.compiled import compiled_available
from repro.sim.simulator import KERNEL_MODES
from repro.workloads import formats as trace_formats
from repro.workloads.trace import TraceSpec

#: Schema version of the BENCH_*.json files themselves.
#: v2: mix (multi-core) and stream (trace-file) case kinds were added;
#: kernel case keys are unchanged and stay comparable with v1 snapshots.
#: v3: per-kind geomeans (``geomean_by_kind``) and scalar-kernel reference
#: cases (``…@scalar``, ``batch="off"``) were added; all previous case keys
#: are unchanged — the default kernel cases now measure the batched kernel,
#: which produces bit-identical statistics.
#: v4: the prefetcher-state tier is recorded (top-level ``kernel`` +
#: ``compiled_kernel_available``, per-case ``kernel``).  Purely additive:
#: case keys are tier-independent, so v4 snapshots compare case-by-case
#: against v3 and earlier baselines.
#: v5: the tier that *actually executed* is recorded per case (``tier``:
#: ``compiled-driver``/``compiled``/``python``, from the simulator's
#: engagement record, so a silently-fallen-back "compiled" run is visible
#: in the snapshot), and default-tier runs embed a ``compiled_tier``
#: section — the compiled-driver-eligible kernel cases re-run under
#: ``kernel="compiled"`` with per-case and geomean ratios against the
#: default tier.  Purely additive: the main case table and its keys are
#: unchanged, so v5 snapshots compare case-by-case against v1–v4.
BENCH_SCHEMA = 5

#: File-name pattern of committed benchmark snapshots.
BENCH_FILE_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Accesses per benchmark trace.  Long enough that per-run constant costs
#: (trace generation is excluded; simulator construction is not) disappear
#: into the noise, short enough that the full suite finishes in well under a
#: minute.
BENCH_TRACE_LENGTH = 40_000

#: The fixed kernel grid: (generator, seed) x prefetcher.  ``"none"`` is
#: the raw kernel (no prefetcher attached); the three designs cover the
#: paper's main families (Gaze two-access, PMP offset-context, vBerti
#: per-PC deltas) and exercise different prefetch volumes.
BENCH_TRACES: Tuple[Tuple[str, int], ...] = (
    ("spatial", 11),
    ("streaming", 12),
    ("cloud", 13),
)
BENCH_PREFETCHERS: Tuple[str, ...] = ("none", "gaze", "pmp", "vberti")

#: The temporal-reuse kernel lane: a recurring pointer-chase trace (dense
#: L1-hit runs after warmup plus a recurring miss sequence) measured raw
#: and under both temporal designs and one spatial design.  Added with the
#: temporal tier; keys are new, so snapshots stay comparable case-by-case
#: with pre-temporal baselines over the shared keys.
TEMPORAL_BENCH_TRACE: Tuple[str, int] = ("temporal-pointer", 14)
TEMPORAL_BENCH_PREFETCHERS: Tuple[str, ...] = ("none", "triangel", "ghb", "gaze")

#: The fixed four-core heterogeneous mix behind every ``mix`` case: one
#: (generator, seed) per core.  Each core's trace holds ``trace_length/4``
#: accesses and its instruction budget is ``trace_length`` instructions.
MIX_BENCH_SPECS: Tuple[Tuple[str, int], ...] = (
    ("spatial", 21),
    ("streaming", 22),
    ("cloud", 23),
    ("graph", 24),
)

#: The (generator, seed) of the ``stream`` trace-file case (written as a
#: gzip-compressed native trace into a temporary directory per run).
STREAM_BENCH_TRACE: Tuple[str, int] = ("streaming", 12)


@dataclass(frozen=True)
class BenchCase:
    """One fixed benchmark case.

    ``kind`` selects the execution path: ``"kernel"`` (single-core fast
    path over a generated trace), ``"mix"`` (the fixed four-core mix with
    ``mode`` = ``exact``/``epoch``) or ``"stream"`` (single-core over a
    compressed on-disk trace file, decoded on every pass).  ``generator``
    and ``seed`` are unused for ``mix`` cases (the mix composition is the
    fixed :data:`MIX_BENCH_SPECS`).

    ``batch`` is the kernel knob of single-core cases: the default
    ``"auto"`` measures the batched kernel (the engine default; key
    unchanged from earlier snapshots), ``"off"`` pins the scalar kernel
    under a distinct ``…@scalar`` key so the batched-vs-scalar delta is
    recorded in every snapshot and the scalar path keeps regression
    coverage.

    ``kernel`` is the prefetcher-state tier (``"auto"``/``"python"``/
    ``"compiled"``) of single-core cases.  It is deliberately *not* part
    of the case key: a snapshot taken under ``--kernel compiled``
    carries the same keys as a pure-Python one, so ``compare_bench``
    lines the tiers up case-by-case and the compiled lane's ratios read
    directly as its speedup.  The tier is recorded in the case payload
    and at snapshot top level instead.
    """

    kind: str
    generator: str
    seed: int
    prefetcher: str
    mode: str = "exact"
    batch: str = "auto"
    kernel: str = "auto"

    def key(self, trace_length: int) -> str:
        """The stable case key recorded in BENCH files."""
        if self.kind == "kernel":
            key = _case_key(self.generator, self.seed, self.prefetcher, trace_length)
            if self.batch == "off":
                key += "@scalar"
            return key
        if self.kind == "mix":
            cores = len(MIX_BENCH_SPECS)
            return f"mix{cores}-hetero-L{trace_length}-{self.mode}/{self.prefetcher}"
        return (
            f"stream-gzt-{self.generator}-s{self.seed}-L{trace_length}"
            f"/{self.prefetcher}"
        )


def _kernel_case(generator: str, seed: int, prefetcher: str) -> BenchCase:
    return BenchCase("kernel", generator, seed, prefetcher)


#: ``--quick`` subset: one kernel case per prefetcher spanning all three
#: trace kinds, one scalar-kernel reference case (so the quick lane covers
#: the batched-vs-scalar pair), plus one multi-core and one streamed-trace
#: case.  Keys are identical to the full suite, so quick runs are directly
#: comparable against full-suite baselines.
QUICK_CASES: Tuple[BenchCase, ...] = (
    _kernel_case("spatial", 11, "none"),
    _kernel_case("spatial", 11, "gaze"),
    _kernel_case("streaming", 12, "pmp"),
    _kernel_case("cloud", 13, "vberti"),
    _kernel_case(*TEMPORAL_BENCH_TRACE, "none"),
    _kernel_case(*TEMPORAL_BENCH_TRACE, "triangel"),
    BenchCase("kernel", "spatial", 11, "none", batch="off"),
    BenchCase("mix", "hetero", 0, "gaze", mode="exact"),
    BenchCase("stream", *STREAM_BENCH_TRACE, "gaze"),
)


def _case_key(generator: str, seed: int, prefetcher: str, length: int) -> str:
    return f"{generator}-s{seed}-L{length}/{prefetcher}"


#: Valid values of the ``kinds`` filter (``repro bench --kind …``).
BENCH_KINDS = ("kernel", "mix", "stream")

#: Prefetchers with a full compiled path (``none`` = the fused C driver
#: loop; the four designs = per-access C driver + in-process C train
#: kernels).  Kernel cases over these make up the ``compiled_tier``
#: snapshot section.
COMPILED_TIER_PREFETCHERS = ("none", "gaze", "pmp", "vberti", "triangel")


def bench_cases(
    quick: bool = False, kinds: Optional[Tuple[str, ...]] = None
) -> List[BenchCase]:
    """The :class:`BenchCase` list of the selected suite.

    ``kinds`` restricts the suite to the named case kinds (any subset of
    :data:`BENCH_KINDS`); ``None`` keeps every case.  Filtering drops
    cases rather than renaming them, so a ``--kind kernel`` run stays
    comparable against full-suite baselines over the shared keys.
    """
    if kinds is not None:
        unknown = sorted(set(kinds) - set(BENCH_KINDS))
        if unknown:
            raise ValueError(
                f"unknown bench kind(s) {', '.join(unknown)}; "
                f"known: {', '.join(BENCH_KINDS)}"
            )
    if quick:
        cases = list(QUICK_CASES)
    else:
        cases = [
            _kernel_case(generator, seed, prefetcher)
            for generator, seed in BENCH_TRACES
            for prefetcher in BENCH_PREFETCHERS
        ]
        # Scalar-kernel reference cases: one prefetcher-less and one trained
        # case pinned to batch="off", so every snapshot records the
        # batched-vs-scalar delta and the scalar path cannot silently regress.
        cases.extend(
            _kernel_case(*TEMPORAL_BENCH_TRACE, prefetcher)
            for prefetcher in TEMPORAL_BENCH_PREFETCHERS
        )
        cases.append(BenchCase("kernel", "spatial", 11, "none", batch="off"))
        cases.append(BenchCase("kernel", "spatial", 11, "gaze", batch="off"))
        # Temporal scalar reference: the recurring trace drives the
        # demand-hit-run fast path, so its batched-vs-scalar delta is the
        # one worth pinning in every snapshot.
        cases.append(
            BenchCase("kernel", *TEMPORAL_BENCH_TRACE, "none", batch="off")
        )
        cases.append(BenchCase("mix", "hetero", 0, "gaze", mode="exact"))
        cases.append(BenchCase("mix", "hetero", 0, "gaze", mode="epoch"))
        cases.append(BenchCase("stream", *STREAM_BENCH_TRACE, "gaze"))
        cases.append(BenchCase("stream", *TEMPORAL_BENCH_TRACE, "triangel"))
    if kinds is not None:
        cases = [case for case in cases if case.kind in kinds]
    return cases


# --------------------------------------------------------------------------- #
# Case execution
# --------------------------------------------------------------------------- #
def _best_of(repeats: int, run_once) -> Tuple[float, float, object]:
    """``(best_rate, best_wall, last_result)`` over ``repeats`` runs."""
    best_rate = 0.0
    best_wall = math.inf
    result = None
    for _ in range(repeats):
        rate, wall, result = run_once()
        if rate > best_rate:
            best_rate = rate
            best_wall = wall
    return best_rate, best_wall, result


def _run_kernel_case(
    case: BenchCase, trace_length: int, repeats: int, spec: Optional[TraceSpec] = None
) -> Dict[str, object]:
    if spec is None:
        spec = TraceSpec(
            name=f"bench-{case.generator}-s{case.seed}",
            suite="bench",
            generator=case.generator,
            seed=case.seed,
            length=trace_length,
        )
    job = SimulationJob(
        spec=spec,
        prefetcher=case.prefetcher,
        trace_length=trace_length,
        batch=case.batch,
        kernel=case.kernel,
    )

    def run_once():
        stats = execute_job(job, record_timing=True)
        return (
            float(stats.extra["accesses_per_sec"]),
            float(stats.extra["wall_time_s"]),
            stats,
        )

    best_rate, best_wall, stats = _best_of(repeats, run_once)
    payload = {
        "kind": case.kind,
        "kernel": case.kernel,
        "tier": stats.extra.get("kernel_tier", "python"),
        "accesses": stats.demand_accesses,
        "instructions": stats.instructions,
        "best_wall_s": round(best_wall, 6),
        "accesses_per_sec": round(best_rate, 1),
    }
    decline = stats.extra.get("kernel_decline_reason")
    if decline:
        payload["tier_decline_reason"] = decline
    return payload


def _run_stream_case(
    case: BenchCase, trace_length: int, repeats: int, directory: str
) -> Dict[str, object]:
    """Stream a compressed on-disk trace: decode cost is part of the case."""
    generated = TraceSpec(
        name=f"bench-stream-{case.generator}-s{case.seed}",
        suite="bench",
        generator=case.generator,
        seed=case.seed,
        length=trace_length,
    ).build(length=trace_length)
    path = Path(directory) / f"bench-{case.generator}-s{case.seed}.gzt.gz"
    trace_formats.save_trace_file(iter(generated), str(path))
    spec = TraceSpec.from_file(
        str(path), name=path.name, suite="bench", length=trace_length
    )
    return _run_kernel_case(case, trace_length, repeats, spec=spec)


def _run_mix_case(
    case: BenchCase, trace_length: int, repeats: int
) -> Dict[str, object]:
    """Run the fixed four-core mix; timed externally around execute_job."""
    per_core_length = max(1, trace_length // len(MIX_BENCH_SPECS))
    specs = tuple(
        TraceSpec(
            name=f"bench-mix-{generator}-s{seed}",
            suite="bench",
            generator=generator,
            seed=seed,
            length=per_core_length,
        )
        for generator, seed in MIX_BENCH_SPECS
    )
    job = MixSimulationJob(
        specs=specs,
        prefetcher=case.prefetcher,
        trace_length=per_core_length,
        max_instructions_per_core=trace_length,
        mode=case.mode,
    )

    def run_once():
        start = time.perf_counter()
        result = execute_job(job)
        wall = time.perf_counter() - start
        accesses = sum(s.demand_accesses for s in result.per_core.values())
        return (accesses / wall if wall > 0 else 0.0, wall, result)

    best_rate, best_wall, result = _best_of(repeats, run_once)
    return {
        "kind": case.kind,
        "cores": len(specs),
        "accesses": sum(s.demand_accesses for s in result.per_core.values()),
        "instructions": sum(s.instructions for s in result.per_core.values()),
        "best_wall_s": round(best_wall, 6),
        "accesses_per_sec": round(best_rate, 1),
    }


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    trace_length: Optional[int] = None,
    progress=None,
    kernel: str = "auto",
    kinds: Optional[Tuple[str, ...]] = None,
) -> Dict[str, object]:
    """Run the throughput suite and return a BENCH-file payload.

    ``trace_length`` defaults to :data:`BENCH_TRACE_LENGTH` (resolved at
    call time so tests can shrink the suite).  ``progress`` is an optional
    callable receiving one line per finished case (used by the CLI to
    stream results).  ``kernel`` selects the prefetcher-state tier of
    every single-core case (mix cases drive the multi-core scheduler and
    keep the engine default); case keys are tier-independent, so a
    compiled-tier run compares case-by-case against pure-Python
    baselines.  ``kinds`` restricts the run to the named case kinds (see
    :func:`bench_cases`).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; known: {', '.join(KERNEL_MODES)}"
        )
    if trace_length is None:
        trace_length = BENCH_TRACE_LENGTH
    cases: Dict[str, Dict[str, object]] = {}
    rates: List[float] = []
    tier_eligible: List[BenchCase] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp_dir:
        for case in bench_cases(quick, kinds=kinds):
            if case.kind != "mix" and kernel != "auto":
                case = replace(case, kernel=kernel)
            if case.kind == "mix":
                payload = _run_mix_case(case, trace_length, repeats)
            elif case.kind == "stream":
                payload = _run_stream_case(case, trace_length, repeats, tmp_dir)
            else:
                payload = _run_kernel_case(case, trace_length, repeats)
                if (
                    case.batch != "off"
                    and case.prefetcher in COMPILED_TIER_PREFETCHERS
                ):
                    tier_eligible.append(case)
            key = case.key(trace_length)
            cases[key] = payload
            rates.append(float(payload["accesses_per_sec"]))
            if progress is not None:
                progress(f"{key:40s} {payload['accesses_per_sec']:12,.0f} acc/s")
    compiled_tier: Optional[Dict[str, object]] = None
    if kernel != "compiled" and compiled_available() and tier_eligible:
        # Re-run every compiled-driver-eligible kernel case under the
        # compiled tier.  Keys are identical to the default-tier cases
        # above, so the ratios read directly as the tier's speedup —
        # this is the snapshot section acceptance gates look at.
        tier_cases: Dict[str, Dict[str, object]] = {}
        tier_ratios: Dict[str, float] = {}
        for case in tier_eligible:
            case = replace(case, kernel="compiled")
            payload = _run_kernel_case(case, trace_length, repeats)
            key = case.key(trace_length)
            tier_cases[key] = payload
            base_rate = float(cases[key]["accesses_per_sec"])
            if base_rate > 0:
                tier_ratios[key] = round(
                    float(payload["accesses_per_sec"]) / base_rate, 3
                )
            if progress is not None:
                progress(
                    f"{key + '@compiled':40s} "
                    f"{payload['accesses_per_sec']:12,.0f} acc/s"
                    f"  ({tier_ratios.get(key, 0.0):.2f}x, {payload['tier']})"
                )
        compiled_tier = {
            "kernel": "compiled",
            "cases": tier_cases,
            "ratio_vs_default": tier_ratios,
            "geomean_ratio_vs_default": round(
                _geomean(list(tier_ratios.values())), 3
            ),
        }
    by_kind: Dict[str, List[float]] = {}
    for payload in cases.values():
        by_kind.setdefault(str(payload["kind"]), []).append(
            float(payload["accesses_per_sec"])
        )
    result: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "kind": "kernel-throughput",
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine_schema_version": ENGINE_SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "trace_length": trace_length,
        "kernel": kernel,
        "compiled_kernel_available": compiled_available(),
        "cases": cases,
        "geomean_accesses_per_sec": round(_geomean(rates), 1),
        "geomean_by_kind": {
            kind: round(_geomean(values), 1)
            for kind, values in sorted(by_kind.items())
        },
    }
    if compiled_tier is not None:
        result["compiled_tier"] = compiled_tier
    return result


def _geomean(values: List[float]) -> float:
    """Geometric mean of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


# --------------------------------------------------------------------------- #
# BENCH_<n>.json trajectory
# --------------------------------------------------------------------------- #
def bench_files(directory: str = ".") -> List[Path]:
    """Committed BENCH files in ``directory``, sorted by snapshot number."""
    root = Path(directory)
    if not root.is_dir():
        return []
    found = []
    for path in root.iterdir():
        match = BENCH_FILE_PATTERN.match(path.name)
        if match is not None:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def latest_bench_file(directory: str = ".") -> Optional[Path]:
    """The most recent BENCH snapshot in ``directory`` (None when empty)."""
    files = bench_files(directory)
    return files[-1] if files else None


def next_bench_path(directory: str = ".") -> Path:
    """The path the next snapshot should be written to (``BENCH_<n+1>``)."""
    files = bench_files(directory)
    if not files:
        return Path(directory) / "BENCH_0.json"
    last = int(BENCH_FILE_PATTERN.match(files[-1].name).group(1))
    return Path(directory) / f"BENCH_{last + 1}.json"


def write_bench_file(result: Dict[str, object], directory: str = ".") -> Path:
    """Write ``result`` as the next ``BENCH_<n>.json``; returns the path."""
    path = next_bench_path(directory)
    path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_bench_file(path) -> Dict[str, object]:
    """Load one BENCH snapshot from disk."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_bench(
    new: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.40,
) -> Dict[str, object]:
    """Compare two snapshots over their shared cases.

    Returns a report with per-case throughput ratios (new/baseline), the
    geomean ratio — both overall and *per case kind* — and the list of
    cases regressing by more than ``threshold`` (e.g. 0.40 = new case is
    slower than 60% of the baseline rate).  Cases present in only one
    snapshot are excluded from the comparison — that is what makes
    ``--quick`` runs comparable against full-suite baselines — but they
    are *named* in the report (``only_in_new`` / ``only_in_baseline``), so
    a renamed or dropped case shows up in the ``--check`` output instead
    of silently losing its regression coverage.

    Geomeans are evaluated per kind (kernel / mix / stream), not just
    globally: a mix-path regression cannot hide behind a kernel-path win.
    A kind whose geomean ratio falls below ``1 - threshold`` is reported
    in ``kind_regressions`` and fails the check like a per-case
    regression.
    """
    new_cases = new.get("cases", {})
    base_cases = baseline.get("cases", {})
    shared = sorted(set(new_cases) & set(base_cases))
    only_in_new = sorted(set(new_cases) - set(base_cases))
    only_in_baseline = sorted(set(base_cases) - set(new_cases))
    ratios: Dict[str, float] = {}
    ratios_by_kind: Dict[str, List[float]] = {}
    regressions: List[str] = []
    for key in shared:
        new_payload = new_cases[key]
        old_rate = float(base_cases[key]["accesses_per_sec"])
        new_rate = float(new_payload["accesses_per_sec"])
        ratio = new_rate / old_rate if old_rate > 0 else math.inf
        ratios[key] = ratio
        kind = str(
            new_payload.get("kind", base_cases[key].get("kind", "kernel"))
        )
        ratios_by_kind.setdefault(kind, []).append(ratio)
        if ratio < 1.0 - threshold:
            regressions.append(key)
    geomean_ratio = _geomean(list(ratios.values())) if ratios else 1.0
    geomean_ratio_by_kind = {
        kind: _geomean(values) for kind, values in sorted(ratios_by_kind.items())
    }
    kind_regressions = [
        kind
        for kind, value in geomean_ratio_by_kind.items()
        if value < 1.0 - threshold
    ]
    return {
        "shared_cases": shared,
        "only_in_new": only_in_new,
        "only_in_baseline": only_in_baseline,
        "ratios": ratios,
        "geomean_ratio": geomean_ratio,
        "geomean_ratio_by_kind": geomean_ratio_by_kind,
        "threshold": threshold,
        "regressions": regressions,
        "kind_regressions": kind_regressions,
        "ok": not regressions and not kind_regressions,
    }


def main(argv=None) -> int:  # pragma: no cover - thin wrapper for debugging
    """Allow ``python -m repro.experiments.bench`` for ad-hoc runs."""
    result = run_bench(progress=print)
    json.dump(result, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0
