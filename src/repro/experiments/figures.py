"""Per-figure experiment definitions.

Each ``figN_*`` function reproduces one figure of the paper's evaluation:
it runs the required simulations through an :class:`ExperimentRunner` and
returns structured rows (list of dicts) or series (nested dicts) that the
benchmarks print and ``EXPERIMENTS.md`` records.  The functions accept a
``runner`` so callers control the scale; when omitted, a default scaled-down
runner is created.

Figure index (see DESIGN.md for the full mapping):

* Fig. 1  -- characterization schemes: speedup on Cloud vs SPEC17 + storage.
* Fig. 4  -- number of aligned initial accesses (1-4).
* Fig. 6/7/8 -- single-core speedup / accuracy / coverage+timeliness.
* Fig. 9  -- Offset vs Gaze-PHT vs full Gaze across all traces.
* Fig. 10 -- streaming module ablation (PHT4SS / SM4SS / Gaze).
* Fig. 11 -- per-trace comparison of vBerti / PMP / Gaze.
* Fig. 12 -- GAP and QMM suites.
* Fig. 13 -- multi-level prefetching combinations.
* Fig. 14 -- multi-core scaling (homogeneous and heterogeneous).
* Fig. 15 -- selected four-core mixes.
* Fig. 16 -- sensitivity to DRAM bandwidth / LLC size / L2C size (sweeps.py).
* Fig. 17 -- sensitivity to Gaze's region size and PHT size.
* Fig. 18 -- vGaze with large virtual regions.
* Fig. 19 -- (extension, not in the paper) spatial vs temporal designs
  head-to-head on the temporal-reuse suite, scaled hierarchy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.executors import JobFailure
from repro.experiments.metrics import aggregate_by_suite, geomean, summarize_runs
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.prefetchers.registry import create_prefetcher
from repro.sim.config import SystemConfig
from repro.workloads.suites import MAIN_SUITES, trace_specs_for_suite
from repro.workloads.trace import TraceSpec

#: The nine prefetchers of the paper's main single-core comparison (Fig. 6).
MAIN_PREFETCHERS = (
    "ip-stride",
    "spp-ppf",
    "ipcp",
    "vberti",
    "sms",
    "bingo",
    "dspatch",
    "pmp",
    "gaze",
)

#: Fig. 1 characterization schemes mapped to their implementations.
CHARACTERIZATION_SCHEMES = (
    ("Offset", "offset"),
    ("Offset-opt (PMP)", "pmp"),
    ("PC", "pc"),
    ("PC-opt (DSPatch)", "dspatch"),
    ("PC+Addr (SMS)", "sms"),
    ("PC+Addr-opt (Bingo)", "bingo"),
    ("Gaze", "gaze"),
)

#: Table VI: the heterogeneous four-core mixes (trace-spec names per core).
FOUR_CORE_MIXES: Dict[str, Sequence[str]] = {
    "mix1": ("wrf-like", "BFS-like", "lbm_s-like", "BC-like"),
    "mix2": ("GemsFDTD-like", "PageRank-like", "BFS-init-like", "BFS-like"),
    "mix3": ("bwaves_s-like", "Components-like", "wrf_s-like", "mcf-like"),
    "mix4": ("PageRank-like", "bwaves_s-like", "PageRank-init-like", "facesim-like"),
    "mix5": ("cassandra-like", "nutch-like", "cloud9-like", "streaming-srv-like"),
}


def _default_runner(runner: Optional[ExperimentRunner]) -> ExperimentRunner:
    return runner if runner is not None else ExperimentRunner(RunScale())


def _failed(*slots: object) -> bool:
    """True when any engine result slot is a structured job failure.

    Figures that read stats fields directly (the mix figures and the
    sensitivity study bypass :class:`~repro.experiments.runner.RunResult`)
    use this to render a failed cell as ``nan`` instead of raising — the
    engine's default ``strict=False`` promises partial grids.
    """
    return any(isinstance(slot, JobFailure) for slot in slots)


def _spec_by_name(name: str) -> TraceSpec:
    for suite in ("spec06", "spec17", "ligra", "parsec", "cloud", "gap",
                  "qmm-server", "qmm-client", "temporal"):
        for spec in trace_specs_for_suite(suite):
            if spec.name == name:
                return spec
    raise KeyError(f"unknown trace spec {name!r}")


# --------------------------------------------------------------------------- #
# Fig. 1: characterization schemes on Cloud vs SPEC17, with storage cost
# --------------------------------------------------------------------------- #
def fig1_characterization(
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """Speedup in Cloud / SPEC17 and storage for each characterization scheme."""
    runner = _default_runner(runner)
    schemes = tuple(prefetcher for _label, prefetcher in CHARACTERIZATION_SCHEMES)
    results = runner.run_suites(("cloud", "spec17"), schemes)
    by_suite_all = aggregate_by_suite(results)
    rows: List[Dict[str, object]] = []
    for label, prefetcher in CHARACTERIZATION_SCHEMES:
        by_suite = by_suite_all[prefetcher]
        rows.append(
            {
                "scheme": label,
                "prefetcher": prefetcher,
                "cloud_speedup": by_suite.get("cloud", 0.0),
                "spec17_speedup": by_suite.get("spec17", 0.0),
                "storage_kib": create_prefetcher(prefetcher).storage_kib(),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 4: number of aligned initial accesses used for characterization
# --------------------------------------------------------------------------- #
def fig4_initial_accesses(
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """IPC / accuracy / coverage when requiring 1..4 aligned initial accesses."""
    runner = _default_runner(runner)
    names = tuple(f"gaze-n{n}" for n in (1, 2, 3, 4))
    summary = summarize_runs(runner.run_suites(MAIN_SUITES, names))
    rows: List[Dict[str, object]] = []
    for n in (1, 2, 3, 4):
        rows.append(
            {
                "initial_accesses": n,
                "speedup": summary[f"gaze-n{n}"]["speedup"],
                "accuracy": summary[f"gaze-n{n}"]["accuracy"],
                "coverage": summary[f"gaze-n{n}"]["coverage"],
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 6 / 7 / 8: the main single-core comparison
# --------------------------------------------------------------------------- #
def fig6_single_core_speedup(
    runner: Optional[ExperimentRunner] = None,
    prefetchers: Sequence[str] = MAIN_PREFETCHERS,
) -> Dict[str, Dict[str, float]]:
    """Per-suite geometric-mean speedup for every evaluated prefetcher."""
    runner = _default_runner(runner)
    results = runner.run_suites(MAIN_SUITES, prefetchers)
    return aggregate_by_suite(results, metric="speedup")


def fig7_accuracy(
    runner: Optional[ExperimentRunner] = None,
    prefetchers: Sequence[str] = MAIN_PREFETCHERS,
) -> Dict[str, Dict[str, float]]:
    """Per-suite mean prefetch accuracy for every evaluated prefetcher."""
    runner = _default_runner(runner)
    results = runner.run_suites(MAIN_SUITES, prefetchers)
    return aggregate_by_suite(results, metric="accuracy")


def fig8_coverage_timeliness(
    runner: Optional[ExperimentRunner] = None,
    prefetchers: Sequence[str] = MAIN_PREFETCHERS,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-suite LLC coverage and late-prefetch fraction."""
    runner = _default_runner(runner)
    results = runner.run_suites(MAIN_SUITES, prefetchers)
    return {
        "coverage": aggregate_by_suite(results, metric="coverage"),
        "late_fraction": aggregate_by_suite(results, metric="late_fraction"),
    }


# --------------------------------------------------------------------------- #
# Fig. 9: effect of the pattern characterization scheme across all traces
# --------------------------------------------------------------------------- #
def fig9_characterization_effect(
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, object]:
    """Sorted per-trace speedups of Offset, Gaze-PHT and full Gaze."""
    runner = _default_runner(runner)
    schemes = ("offset", "gaze-pht", "gaze")
    results = runner.run_suites(MAIN_SUITES, schemes)
    per_scheme: Dict[str, List[float]] = {name: [] for name in schemes}
    for result in results:
        per_scheme[result.prefetcher].append(result.speedup)
    return {
        "series": {name: sorted(values) for name, values in per_scheme.items()},
        "averages": {name: geomean(values) for name, values in per_scheme.items()},
    }


# --------------------------------------------------------------------------- #
# Fig. 10: streaming-module ablation on streaming-heavy workloads
# --------------------------------------------------------------------------- #
def fig10_streaming_module(
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """PHT4SS vs SM4SS vs full Gaze on streaming / graph representative traces."""
    runner = _default_runner(runner)
    trace_names = (
        "bwaves_s-like",
        "leslie3d-like",
        "roms_s-like",
        "streamcluster-like",
        "PageRank-init-like",
        "PageRank-like",
        "BFS-init-like",
        "BFS-like",
    )
    specs = [_spec_by_name(name) for name in trace_names]
    schemes = ("pht4ss", "sm4ss", "gaze")
    results = runner.run_grid(specs, schemes)
    speedups = {(r.spec.name, r.prefetcher): r.speedup for r in results}
    rows: List[Dict[str, object]] = []
    for name in trace_names:
        row: Dict[str, object] = {"trace": name}
        for prefetcher in schemes:
            row[prefetcher] = speedups[(name, prefetcher)]
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Fig. 11: vBerti vs PMP vs Gaze on representative traces
# --------------------------------------------------------------------------- #
def fig11_comparative(
    runner: Optional[ExperimentRunner] = None,
    trace_names: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Per-trace speedup of the three latest spatial prefetchers."""
    runner = _default_runner(runner)
    if trace_names is None:
        trace_names = (
            "leslie3d-like",
            "GemsFDTD-like",
            "libquantum-like",
            "lbm-like",
            "sphinx3-like",
            "mcf-like",
            "BFS-like",
            "PageRank-like",
            "Components-like",
            "canneal-like",
            "facesim-like",
            "streamcluster-like",
            "cassandra-like",
            "cloud9-like",
            "nutch-like",
            "gcc_s-like",
            "bwaves_s-like",
            "mcf_s-like",
            "xalancbmk_s-like",
            "fotonik3d_s-like",
            "roms_s-like",
        )
    specs = [_spec_by_name(name) for name in trace_names]
    prefetchers = ("vberti", "pmp", "gaze")
    results = runner.run_grid(specs, prefetchers)
    speedups = {(r.spec.name, r.prefetcher): r.speedup for r in results}
    rows: List[Dict[str, object]] = []
    for spec in specs:
        row: Dict[str, object] = {"trace": spec.name, "suite": spec.suite}
        for prefetcher in prefetchers:
            row[prefetcher] = speedups[(spec.name, prefetcher)]
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Fig. 12: GAP and QMM suites
# --------------------------------------------------------------------------- #
def fig12_gap_qmm(
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Speedups of vBerti / PMP / Gaze on GAP and QMM (server + client)."""
    runner = _default_runner(runner)
    prefetchers = ("vberti", "pmp", "gaze")
    results = runner.run_suites(("gap", "qmm-server", "qmm-client"), prefetchers)
    return aggregate_by_suite(results, metric="speedup")


# --------------------------------------------------------------------------- #
# Fig. 13: multi-level prefetching
# --------------------------------------------------------------------------- #
def fig13_multilevel(
    runner: Optional[ExperimentRunner] = None,
) -> List[Dict[str, object]]:
    """L1+L2 prefetcher combinations (Group 1) and with IP-stride at L1 (Group 2)."""
    runner = _default_runner(runner)
    l1_choices = ("vberti", "pmp", "dspatch", "ipcp", "gaze")
    l2_choices = ("spp-ppf", "bingo")
    group1 = [f"{l1}+{l2}" for l1 in l1_choices for l2 in l2_choices]
    group2 = [f"ip-stride+{l2}" for l2 in ("spp-ppf", "bingo", "gaze")]

    # One batched grid covering the reference and every combination, so the
    # engine can dedupe shared baselines and parallelize across all of them.
    summary = summarize_runs(
        runner.run_suites(MAIN_SUITES, ["gaze"] + group1 + group2)
    )
    rows: List[Dict[str, object]] = [
        {"group": "reference", "combination": "gaze(L1 only)",
         "speedup": summary["gaze"]["speedup"]}
    ]
    for name in group1:
        rows.append(
            {"group": "group1", "combination": name,
             "speedup": summary[name]["speedup"]}
        )
    for name in group2:
        rows.append(
            {"group": "group2", "combination": name,
             "speedup": summary[name]["speedup"]}
        )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 14 / 15: multi-core (engine-backed mix jobs)
# --------------------------------------------------------------------------- #
def fig14_multicore(
    runner: Optional[ExperimentRunner] = None,
    core_counts: Sequence[int] = (1, 2, 4),
    prefetchers: Sequence[str] = ("vberti", "pmp", "bingo", "gaze"),
    trace_length: int = 8_000,
    max_instructions_per_core: int = 30_000,
    homogeneous_trace: str = "bwaves_s-like",
    heterogeneous_traces: Sequence[str] = (
        "bwaves_s-like",
        "PageRank-like",
        "cassandra-like",
        "mcf_s-like",
        "leslie3d-like",
        "gcc_s-like",
        "facesim-like",
        "xalancbmk_s-like",
    ),
    mode: str = "exact",
    epoch_instructions: int = 0,
    workers: int = 1,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Multi-core speedups for homogeneous and heterogeneous mixes.

    Every mix — baselines included — is submitted to the runner's engine as
    one :class:`~repro.experiments.jobs.MixSimulationJob` batch, so
    ``--jobs N`` shards mixes across worker processes and warm re-runs are
    answered from the persistent cache.  ``mode`` selects the execution
    schedule (``"exact"`` interleaving or the epoch-sharded approximation).

    Returns ``{"homogeneous"|"heterogeneous": {prefetcher: {cores: speedup}}}``.
    """
    runner = _default_runner(runner)
    homo_spec = _spec_by_name(homogeneous_trace)
    hetero_specs = [_spec_by_name(name) for name in heterogeneous_traces]

    def mix_job(specs, prefetcher):
        return runner.mix_job_for(
            specs,
            prefetcher,
            trace_length=trace_length,
            max_instructions_per_core=max_instructions_per_core,
            mode=mode,
            epoch_instructions=epoch_instructions,
            workers=workers,
        )

    jobs = []
    layout: List = []
    for cores in core_counts:
        for kind, specs in (
            ("homogeneous", (homo_spec,) * cores),
            ("heterogeneous", tuple(hetero_specs[:cores])),
        ):
            jobs.append(mix_job(specs, "none"))
            layout.append((kind, None, cores))
            for prefetcher in prefetchers:
                jobs.append(mix_job(specs, prefetcher))
                layout.append((kind, prefetcher, cores))
    stats_list = runner.engine.run_jobs(jobs)

    results: Dict[str, Dict[str, Dict[int, float]]] = {
        "homogeneous": {p: {} for p in prefetchers},
        "heterogeneous": {p: {} for p in prefetchers},
    }
    baselines: Dict = {}
    for (kind, prefetcher, cores), stats in zip(layout, stats_list):
        if prefetcher is None:
            baselines[(kind, cores)] = stats
        elif _failed(stats, baselines[(kind, cores)]):
            results[kind][prefetcher][cores] = float("nan")
        else:
            results[kind][prefetcher][cores] = stats.geomean_speedup(
                baselines[(kind, cores)]
            )
    return results


def fig15_four_core_mixes(
    runner: Optional[ExperimentRunner] = None,
    prefetchers: Sequence[str] = ("vberti", "pmp", "gaze"),
    trace_length: int = 8_000,
    max_instructions_per_core: int = 30_000,
    mixes: Optional[Dict[str, Sequence[str]]] = None,
    mode: str = "exact",
    epoch_instructions: int = 0,
    workers: int = 1,
) -> List[Dict[str, object]]:
    """Per-core and average speedups on the selected four-core mixes (Table VI).

    Like :func:`fig14_multicore`, the whole table — five mixes times
    (baseline + prefetchers) — is one engine batch of mix jobs:
    parallelizable across worker processes and persistently cacheable.
    """
    runner = _default_runner(runner)
    mixes = mixes if mixes is not None else FOUR_CORE_MIXES

    def mix_job(specs, prefetcher):
        return runner.mix_job_for(
            specs,
            prefetcher,
            trace_length=trace_length,
            max_instructions_per_core=max_instructions_per_core,
            mode=mode,
            epoch_instructions=epoch_instructions,
            workers=workers,
        )

    jobs = []
    layout: List = []
    for mix_name, trace_names in mixes.items():
        specs = tuple(_spec_by_name(name) for name in trace_names)
        jobs.append(mix_job(specs, "none"))
        layout.append((mix_name, None))
        for prefetcher in prefetchers:
            jobs.append(mix_job(specs, prefetcher))
            layout.append((mix_name, prefetcher))
    stats_list = runner.engine.run_jobs(jobs)

    rows: List[Dict[str, object]] = []
    baselines: Dict[str, object] = {}
    for (mix_name, prefetcher), stats in zip(layout, stats_list):
        if prefetcher is None:
            baselines[mix_name] = stats
            continue
        baseline = baselines[mix_name]
        row: Dict[str, object] = {"mix": mix_name, "prefetcher": prefetcher}
        if _failed(stats, baseline):
            for core in range(len(mixes[mix_name])):
                row[f"c{core}"] = float("nan")
            row["avg"] = float("nan")
            rows.append(row)
            continue
        for core in sorted(stats.per_core):
            base_core = baseline.per_core[core]
            run_core = stats.per_core[core]
            row[f"c{core}"] = (
                run_core.ipc / base_core.ipc if base_core.ipc else 0.0
            )
        row["avg"] = stats.geomean_speedup(baseline)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Fig. 17: Gaze configuration sensitivity (region size / PHT size)
# --------------------------------------------------------------------------- #
def fig17_gaze_sensitivity(
    runner: Optional[ExperimentRunner] = None,
    region_sizes: Sequence[int] = (512, 1024, 2048, 4096),
    pht_sizes: Sequence[int] = (128, 256, 512, 1024),
    trace_names: Sequence[str] = (
        "bwaves_s-like",
        "fotonik3d_s-like",
        "gcc_s-like",
        "PageRank-like",
        "streamcluster-like",
        "xalancbmk_s-like",
    ),
) -> Dict[str, List[Dict[str, object]]]:
    """Speedup of Gaze with different region sizes and PHT sizes.

    Results are normalised to the baseline configuration (4 KB region,
    256-entry PHT), exactly as the paper plots them.
    """
    runner = _default_runner(runner)
    specs = [_spec_by_name(name) for name in trace_names]

    # Every configuration is a (spec, "gaze", params) job; the whole
    # sensitivity study is submitted as one engine batch, so it is both
    # cacheable and parallelizable.
    configs: List[Dict[str, object]] = [{}]
    configs += [{"region_size": size} for size in region_sizes]
    configs += [{"pht_entries": entries} for entries in pht_sizes]

    jobs = []
    for spec in specs:
        jobs.append(runner.job_for(spec, "none"))
        for params in configs:
            jobs.append(runner.job_for(spec, "gaze", prefetcher_params=params))
    stats_list = runner.engine.run_jobs(jobs)

    region_rows: List[Dict[str, object]] = []
    pht_rows: List[Dict[str, object]] = []
    cursor = 0
    for spec in specs:
        baseline = stats_list[cursor]
        cursor += 1
        speedups: List[float] = []
        for _params in configs:
            cell = stats_list[cursor]
            speedups.append(
                float("nan") if _failed(cell, baseline) else cell.speedup(baseline)
            )
            cursor += 1
        reference = speedups[0]
        region_row: Dict[str, object] = {"trace": spec.name}
        for size, speedup in zip(region_sizes, speedups[1 : 1 + len(region_sizes)]):
            region_row[f"{size // 1024}KB" if size >= 1024 else f"{size}B"] = (
                speedup / reference if reference else 0.0
            )
        region_rows.append(region_row)
        pht_row: Dict[str, object] = {"trace": spec.name}
        for entries, speedup in zip(pht_sizes, speedups[1 + len(region_sizes) :]):
            pht_row[str(entries)] = speedup / reference if reference else 0.0
        pht_rows.append(pht_row)
    return {"region_size": region_rows, "pht_size": pht_rows}


# --------------------------------------------------------------------------- #
# Fig. 18: vGaze with larger (virtual) region sizes
# --------------------------------------------------------------------------- #
def fig18_vgaze(
    runner: Optional[ExperimentRunner] = None,
    region_sizes_kb: Sequence[int] = (4, 8, 16, 32, 64),
    trace_names: Sequence[str] = (
        "bwaves_s-like",
        "lbm-like",
        "wrf-like",
        "gcc_s-like",
        "xalancbmk_s-like",
        "fotonik3d_s-like",
        "PageRank-like",
        "streamcluster-like",
    ),
) -> List[Dict[str, object]]:
    """Speedup of vGaze at 4-64 KB regions, normalised to the 4 KB baseline."""
    runner = _default_runner(runner)
    specs = [_spec_by_name(name) for name in trace_names]
    prefetchers = tuple(f"vgaze-{size_kb}kb" for size_kb in region_sizes_kb)
    results = runner.run_grid(specs, prefetchers)
    speedups = {(r.spec.name, r.prefetcher): r.speedup for r in results}
    rows: List[Dict[str, object]] = []
    for spec in specs:
        reference = None
        row: Dict[str, object] = {"trace": spec.name}
        for size_kb in region_sizes_kb:
            speedup = speedups[(spec.name, f"vgaze-{size_kb}kb")]
            if size_kb == 4:
                reference = speedup
            row[f"{size_kb}KB"] = speedup / reference if reference else 0.0
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Fig. 19 (extension): spatial vs temporal prefetching head-to-head
# --------------------------------------------------------------------------- #
#: The paper's spatial frontier vs the temporal-correlation frontier.
SPATIAL_DESIGNS = ("gaze", "pmp", "vberti")
TEMPORAL_DESIGNS = ("triangel", "ghb")


def temporal_frontier_system() -> SystemConfig:
    """Scaled hierarchy for the spatial-vs-temporal comparison.

    The reproduction's traces are several orders of magnitude shorter than
    the paper's, so working sets that would thrash a real 2 MB LLC fit
    comfortably in the Table II hierarchy — and the core model hides any
    latency shorter than a DRAM round trip, making cache-resident reuse
    invisible in IPC.  This config scales the caches the same way the
    traces are scaled (L1D 8 KB, L2C 32 KB, LLC 64 KB, same latencies and
    DRAM), so the temporal suite's recurring miss sequences reach DRAM
    exactly as their full-size counterparts would.
    """
    base = SystemConfig()
    return dataclasses.replace(
        base,
        l1d=dataclasses.replace(base.l1d, size_bytes=8 * 1024, ways=4),
        l2c=dataclasses.replace(base.l2c, size_bytes=32 * 1024, ways=8),
        llc=dataclasses.replace(base.llc, size_bytes=64 * 1024, ways=16),
    )


def fig19_spatial_vs_temporal(
    runner: Optional[ExperimentRunner] = None,
    trace_names: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Temporal designs (Triangel, GHB) vs spatial designs, head to head.

    Runs the temporal-reuse suite plus spatial/irregular representatives
    on the scaled :func:`temporal_frontier_system` and reports per-trace
    speedups plus per-design geomeans over each trace family.  The
    expected shape: temporal prefetchers win on long-range recurring miss
    sequences (linkwalk), stay neutral where Triangel's confidence
    machinery detects no replayable stream (kvprobe, ring), and do
    nothing for spatial streaming — while offset-style spatial designs
    (PMP) collapse on temporal traces they cannot pattern-match.
    """
    runner = _default_runner(runner)
    if trace_names is None:
        trace_names = tuple(
            spec.name for spec in trace_specs_for_suite("temporal")
        ) + ("leslie3d-like", "sphinx3-like", "mcf-like", "cassandra-like")
    specs = [_spec_by_name(name) for name in trace_names]
    prefetchers = TEMPORAL_DESIGNS + SPATIAL_DESIGNS
    results = runner.run_grid(specs, prefetchers, system=temporal_frontier_system())
    speedups = {(r.spec.name, r.prefetcher): r.speedup for r in results}
    rows: List[Dict[str, object]] = []
    for spec in specs:
        row: Dict[str, object] = {"trace": spec.name, "suite": spec.suite}
        for prefetcher in prefetchers:
            row[prefetcher] = speedups[(spec.name, prefetcher)]
        rows.append(row)
    summary: Dict[str, Dict[str, float]] = {}
    for family, family_specs in (
        ("temporal", [s for s in specs if s.suite == "temporal"]),
        ("spatial", [s for s in specs if s.suite != "temporal"]),
    ):
        summary[family] = {
            prefetcher: geomean(
                [speedups[(s.name, prefetcher)] for s in family_specs]
            )
            for prefetcher in prefetchers
        }
    return {"rows": rows, "geomean_by_family": summary}
