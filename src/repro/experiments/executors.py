"""Execution strategies for batches of :class:`SimulationJob`.

Both executors share one contract: given a sequence of jobs (single-core
:class:`~repro.experiments.jobs.SimulationJob` or multi-core
:class:`~repro.experiments.jobs.MixSimulationJob`), return the
corresponding statistics *in submission order*.  Because
:func:`~repro.experiments.jobs.execute_job` is pure and every workload
generator is seed-deterministic, the parallel executor is bit-identical to
the serial one — only wall-clock time differs.  Mix jobs are sharded
across workers exactly like single-core jobs: one worker process runs one
whole mix (fig. 14 runs its 2-core and 4-core mixes concurrently under
``--jobs``).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Protocol, Sequence

from repro.experiments.jobs import AnyJob, JobResult, execute_job


class Executor(Protocol):
    """Anything that can run a batch of jobs in submission order."""

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` and return their stats, order preserved."""
        ...


class SerialExecutor:
    """Runs every job in-process, one after another."""

    jobs = 1

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` sequentially in the calling process."""
        return [execute_job(job) for job in jobs]


class ParallelExecutor:
    """Fans jobs out over a :class:`ProcessPoolExecutor`.

    ``ProcessPoolExecutor.map`` yields results in submission order, and the
    worker function is pure, so results are identical to
    :class:`SerialExecutor` for the same batch.  Prefers the ``fork`` start
    method (cheap workers that inherit the imported package) and falls back
    to the platform default elsewhere.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)

    def _context(self):
        # Prefer cheap forked workers only on Linux; macOS lists "fork" but
        # defaults to spawn because forking after framework/thread init is
        # unsafe there, so everywhere else we take the platform default.
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` across worker processes, order preserved."""
        jobs = list(jobs)
        if len(jobs) <= 1 or self.jobs == 1:
            return SerialExecutor().run(jobs)
        workers = min(self.jobs, len(jobs))
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        ) as pool:
            return list(pool.map(execute_job, jobs, chunksize=chunksize))


def make_executor(jobs: Optional[int] = None) -> Executor:
    """Build the right executor for a ``--jobs`` style request.

    ``None`` or ``1`` selects the serial executor; anything larger selects
    the process-pool executor with that many workers.
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
