"""Execution strategies for batches of :class:`SimulationJob`.

Both executors share one contract: given a sequence of jobs (single-core
:class:`~repro.experiments.jobs.SimulationJob` or multi-core
:class:`~repro.experiments.jobs.MixSimulationJob`), return the
corresponding statistics *in submission order*.  Because
:func:`~repro.experiments.jobs.execute_job` is pure and every workload
generator is seed-deterministic, the parallel executor is bit-identical to
the serial one — only wall-clock time differs.  Mix jobs are sharded
across workers exactly like single-core jobs: one worker process runs one
whole mix (fig. 14 runs its 2-core and 4-core mixes concurrently under
``--jobs``).

Fault tolerance.  A ``kill -9``'d, hung, or transiently failing worker
must cost one retry, not the whole figure batch — that is the contract
the ROADMAP's simulation-as-a-service arc builds on.  Both executors
implement :meth:`run_detailed`, which drives each job through a bounded
:class:`RetryPolicy` (exponential backoff, deterministic jitter) and a
per-job timeout, and returns a :class:`BatchOutcome` in which every slot
is either the job's stats or a structured :class:`JobFailure` (job key,
attempts, reason, traceback).  Nothing is ever silently dropped: a
failure slot is data the engine/runner can render as a failed cell.  The
strict :meth:`run` contract (raise on any failure) is preserved on top of
it.  Because retried jobs are pure, a batch that survives injected chaos
is *bit-identical* to a fault-free run — the property
``tests/test_faults.py`` pins.

The process-pool path recovers from :class:`BrokenProcessPool` (a worker
hard-exit poisons every in-flight future of that pool) by rebuilding the
pool and resubmitting only the unfinished jobs, and reclaims hung workers
by terminating the pool when a running job exceeds ``job_timeout``.
``KeyboardInterrupt`` and other ``BaseException``s terminate and join all
worker processes before propagating — an interrupted ``--jobs N`` batch
leaves no orphaned workers behind.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Union

from repro.experiments.faults import (
    FaultInjected,
    FaultPlan,
    FaultsArg,
    resolve_fault_plan,
)
from repro.experiments.jobs import AnyJob, JobResult, MixSimulationJob, execute_job

#: How long the harvest loop waits for a completion before rescanning for
#: per-job timeouts (and injected interrupts).
_POLL_SECONDS = 0.05


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts total tries (1 = never retry).  The jitter is
    a hash of ``(token, attempt)`` rather than an RNG draw so two runs of
    the same batch back off identically — wall-clock behaviour is part of
    what chaos tests replay.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, token: str, attempt: int) -> float:
        """Seconds to wait before attempt ``attempt + 1`` (attempt >= 1)."""
        base = min(
            self.backoff_max_s,
            self.backoff_s * self.backoff_factor ** (attempt - 1),
        )
        if not self.jitter or base <= 0:
            return base
        # Deterministic jitter in [1 - jitter, 1]: derived from the same
        # hash family the fault plan uses, keyed by (token, attempt).
        fraction = FaultPlan(seed=0).fraction("retry.jitter", f"{token}|{attempt}")
        return base * (1.0 - self.jitter * fraction)


@dataclass(frozen=True, slots=True)
class JobFailure:
    """A job that exhausted its retries — structured, renderable evidence.

    Occupies the job's slot in batch results so orderings and grid shapes
    survive partial failure.  ``key`` is the job's unsalted content key,
    ``reason`` one of ``"error"`` / ``"crash"`` / ``"timeout"``,
    ``traceback`` the formatted worker-side traceback when one exists
    (crashed workers leave none).
    """

    key: str
    name: str
    attempts: int
    reason: str
    error: str = ""
    traceback: str = ""

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for reports and CLI output."""
        return {
            "key": self.key,
            "name": self.name,
            "attempts": self.attempts,
            "reason": self.reason,
            "error": self.error,
            "traceback": self.traceback,
        }

    def __str__(self) -> str:
        detail = f": {self.error}" if self.error else ""
        return (
            f"{self.name} failed after {self.attempts} attempt(s) "
            f"[{self.reason}]{detail}"
        )


#: What one slot of a detailed batch holds.
SlotResult = Union[JobResult, JobFailure]


@dataclass(slots=True)
class BatchOutcome:
    """Everything a batch execution produced, failures included.

    ``results`` aligns 1:1 with the submitted jobs; ``retries`` counts
    re-submissions beyond each job's first attempt, ``crashes`` broken-pool
    events, ``timeouts`` reclaimed hung jobs.
    """

    results: List[SlotResult] = field(default_factory=list)
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0

    @property
    def failures(self) -> List[JobFailure]:
        """The slots that exhausted their retries, in submission order."""
        return [slot for slot in self.results if isinstance(slot, JobFailure)]

    @property
    def ok(self) -> bool:
        """True when every job produced stats."""
        return not self.failures


class BatchExecutionError(RuntimeError):
    """Raised under ``strict=True`` when any job exhausted its retries."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed after retries:"]
        lines.extend(f"  - {failure}" for failure in self.failures)
        super().__init__("\n".join(lines))


def job_name(job: AnyJob) -> str:
    """Short human-readable identity for reports and failure slots."""
    if isinstance(job, MixSimulationJob):
        return job.name
    return f"{job.spec.name}/{job.prefetcher or 'none'}"


# --------------------------------------------------------------------------- #
# Pool worker
# --------------------------------------------------------------------------- #
# The fault plan crosses the process boundary as its spec string (plans are
# mutable and carry per-process counters, so shipping the object would be
# misleading); each worker parses it once and caches the result.
_WORKER_PLAN_SPEC: Optional[str] = None
_WORKER_PLAN: Optional[FaultPlan] = None


def _worker_plan(plan_spec: Optional[str]) -> Optional[FaultPlan]:
    global _WORKER_PLAN_SPEC, _WORKER_PLAN
    if plan_spec != _WORKER_PLAN_SPEC:
        _WORKER_PLAN_SPEC = plan_spec
        _WORKER_PLAN = FaultPlan.from_spec(plan_spec) if plan_spec else None
    return _WORKER_PLAN


def _apply_worker_faults(
    plan: Optional[FaultPlan], token: str, attempt: int, in_pool_worker: bool
) -> None:
    """Fire armed worker-side faults for this (job, attempt).

    Crash and hang only ever fire inside pool worker processes — injecting
    them in-process would kill or stall the caller itself, which is not
    the failure mode under test.
    """
    if plan is None:
        return
    if in_pool_worker:
        if plan.should_fire("worker.crash", token, attempt) is not None:
            from repro.experiments.faults import CRASH_EXIT_CODE

            os._exit(CRASH_EXIT_CODE)
        rule = plan.should_fire("worker.hang", token, attempt)
        if rule is not None:
            time.sleep(rule.seconds)
    if plan.should_fire("worker.error", token, attempt) is not None:
        raise FaultInjected(f"injected worker.error for {token} (attempt {attempt})")


def _pool_worker(job: AnyJob, attempt: int, plan_spec: Optional[str]) -> JobResult:
    """Top-level pool target: apply armed faults, then run the pure job."""
    plan = _worker_plan(plan_spec)
    _apply_worker_faults(plan, job.key(), attempt, in_pool_worker=True)
    return execute_job(job)


class Executor(Protocol):
    """Anything that can run a batch of jobs in submission order."""

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` and return their stats, order preserved."""
        ...

    def run_detailed(self, jobs: Sequence[AnyJob]) -> BatchOutcome:
        """Execute ``jobs`` with retries; failures become result slots."""
        ...


class SerialExecutor:
    """Runs every job in-process, one after another."""

    jobs = 1

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        faults: FaultsArg = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = resolve_fault_plan(faults)

    def run_detailed(self, jobs: Sequence[AnyJob]) -> BatchOutcome:
        """Execute ``jobs`` sequentially, retrying transient failures.

        Only the ``worker.error`` fault site can fire here — crash and
        hang faults are meaningless in-process (and a per-job timeout is
        unenforceable without a second process; use ``--jobs 2`` to get
        one).
        """
        outcome = BatchOutcome()
        for job in jobs:
            token = job.key()
            last_error: Optional[BaseException] = None
            for attempt in range(1, self.retry.max_attempts + 1):
                if attempt > 1:
                    outcome.retries += 1
                    time.sleep(self.retry.delay(token, attempt - 1))
                try:
                    _apply_worker_faults(
                        self.fault_plan, token, attempt, in_pool_worker=False
                    )
                    outcome.results.append(execute_job(job))
                    break
                except Exception as error:
                    last_error = error
            else:
                outcome.results.append(
                    JobFailure(
                        key=token,
                        name=job_name(job),
                        attempts=self.retry.max_attempts,
                        reason="error",
                        error=repr(last_error),
                        traceback="".join(
                            traceback_module.format_exception(last_error)
                        ),
                    )
                )
        return outcome

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` sequentially; raise if any exhausts retries."""
        outcome = self.run_detailed(jobs)
        if not outcome.ok:
            raise BatchExecutionError(outcome.failures)
        return outcome.results  # type: ignore[return-value]


class ParallelExecutor:
    """Fans jobs out over a :class:`ProcessPoolExecutor`, surviving chaos.

    Jobs are submitted individually (not ``pool.map``) so each has its own
    future: a :class:`BrokenProcessPool` from a hard-exited worker, or a
    hung worker reclaimed by ``job_timeout``, costs the affected jobs one
    :class:`RetryPolicy` attempt while finished results are kept.  The
    worker function is pure, so results remain bit-identical to
    :class:`SerialExecutor` for the same batch regardless of how many
    retries occurred.  Prefers the ``fork`` start method (cheap workers
    that inherit the imported package) and falls back to the platform
    default elsewhere.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        job_timeout: Optional[float] = None,
        faults: FaultsArg = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be > 0")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.retry = retry if retry is not None else RetryPolicy()
        self.job_timeout = job_timeout
        self.fault_plan = resolve_fault_plan(faults)

    def _context(self):
        # Prefer cheap forked workers only on Linux; macOS lists "fork" but
        # defaults to spawn because forking after framework/thread init is
        # unsafe there, so everywhere else we take the platform default.
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool: kill workers, then join them.

        Used for hung-worker reclamation and interrupt cleanup, where a
        graceful shutdown would block forever behind a wedged job.  Reaches
        into ``_processes`` (no public kill API on ProcessPoolExecutor);
        ``shutdown(wait=True)`` afterwards joins the now-dying processes so
        none are orphaned.
        """
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # repro-lint: waive R6 — worker already dead; terminate is idempotent cleanup
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # repro-lint: waive R6 — a broken pool can raise from shutdown; workers are already signalled
            pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:  # repro-lint: waive R6 — already reaped by shutdown(); join is belt-and-braces
                pass

    def run_detailed(self, jobs: Sequence[AnyJob]) -> BatchOutcome:
        """Execute ``jobs`` across worker processes with retry/timeout.

        Structured as *sessions*: one pool runs until either everything
        pending finishes or the pool must be abandoned (worker crash,
        hung-job reclamation), in which case a fresh pool retries the
        survivors.  Attempts are charged at submission — a job whose pool
        broke because of a *different* job may burn an attempt, which is
        the price of not being able to attribute a hard exit, and is why
        ``max_attempts`` bounds total work rather than per-cause work.
        """
        jobs = list(jobs)
        outcome = BatchOutcome()
        if len(jobs) <= 1 or self.jobs == 1:
            return SerialExecutor(retry=self.retry, faults=self.fault_plan).run_detailed(
                jobs
            )

        plan = self.fault_plan
        plan_spec = plan.to_spec() if plan is not None else None
        tokens = [job.key() for job in jobs]
        slots: List[Optional[SlotResult]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        # Last known blame per pending index; refined as evidence arrives.
        blame: Dict[int, JobFailure] = {}
        pending = set(range(len(jobs)))

        while pending:
            # Pre-session backoff: anything being retried waits out its
            # (deterministic) delay before the replacement pool spins up.
            delay = max(
                (
                    self.retry.delay(tokens[index], attempts[index])
                    for index in pending
                    if attempts[index] > 0
                ),
                default=0.0,
            )
            if delay > 0:
                time.sleep(delay)

            workers = min(self.jobs, len(pending))
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=self._context()
            )
            session_broken = False
            try:
                future_to_index = {}
                for index in sorted(pending):
                    if attempts[index] > 0:
                        outcome.retries += 1
                    attempts[index] += 1
                    future = pool.submit(
                        _pool_worker, jobs[index], attempts[index], plan_spec
                    )
                    future_to_index[future] = index
                started: Dict[object, float] = {}

                while future_to_index:
                    done, not_done = wait(
                        future_to_index, timeout=_POLL_SECONDS,
                        return_when=FIRST_COMPLETED,
                    )
                    if plan is not None and plan.should_fire(
                        "main.interrupt", tokens[min(pending)]
                    ):
                        raise KeyboardInterrupt("injected main.interrupt")
                    for future in done:
                        index = future_to_index.pop(future)
                        try:
                            slots[index] = future.result()
                            pending.discard(index)
                            blame.pop(index, None)
                        except BrokenProcessPool:
                            # A worker hard-exited; every in-flight future
                            # of this pool is poisoned. Abandon the session
                            # and retry the survivors on a fresh pool.
                            outcome.crashes += 1
                            for victim in future_to_index.values():
                                blame[victim] = self._failure(
                                    jobs[victim], tokens[victim],
                                    attempts[victim], "crash",
                                )
                            blame[index] = self._failure(
                                jobs[index], tokens[index],
                                attempts[index], "crash",
                            )
                            session_broken = True
                            break
                        except Exception as error:
                            blame[index] = self._failure(
                                jobs[index], tokens[index], attempts[index],
                                "error", error=error,
                            )
                    if session_broken:
                        break
                    now = time.monotonic()
                    timed_out = False
                    for future in not_done:
                        if future.running():
                            started.setdefault(future, now)
                            if (
                                self.job_timeout is not None
                                and now - started[future] > self.job_timeout
                            ):
                                index = future_to_index[future]
                                outcome.timeouts += 1
                                blame[index] = self._failure(
                                    jobs[index], tokens[index],
                                    attempts[index], "timeout",
                                )
                                timed_out = True
                    if timed_out:
                        # No way to cancel a running job short of killing
                        # its process, and killing one worker breaks the
                        # whole pool anyway — reclaim the session.
                        session_broken = True
                        break
            except BaseException:
                # KeyboardInterrupt (real or injected) or anything else
                # unexpected: never leave workers running.
                self._terminate_pool(pool)
                raise
            if session_broken:
                self._terminate_pool(pool)
            else:
                pool.shutdown(wait=True)

            # Anything still pending either retries (next session) or — out
            # of attempts — settles into its recorded failure.
            for index in sorted(pending):
                if attempts[index] >= self.retry.max_attempts:
                    slots[index] = blame.get(index) or self._failure(
                        jobs[index], tokens[index], attempts[index], "error"
                    )
                    pending.discard(index)

        outcome.results = [slot for slot in slots if slot is not None]
        return outcome

    @staticmethod
    def _failure(
        job: AnyJob,
        token: str,
        attempts: int,
        reason: str,
        error: Optional[BaseException] = None,
    ) -> JobFailure:
        return JobFailure(
            key=token,
            name=job_name(job),
            attempts=attempts,
            reason=reason,
            error=repr(error) if error is not None else "",
            traceback=(
                "".join(traceback_module.format_exception(error))
                if error is not None
                else ""
            ),
        )

    def run(self, jobs: Sequence[AnyJob]) -> List[JobResult]:
        """Execute ``jobs`` across workers; raise if any exhausts retries."""
        outcome = self.run_detailed(jobs)
        if not outcome.ok:
            raise BatchExecutionError(outcome.failures)
        return outcome.results  # type: ignore[return-value]


def make_executor(
    jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    job_timeout: Optional[float] = None,
    faults: FaultsArg = None,
) -> Executor:
    """Build the right executor for a ``--jobs`` style request.

    ``None`` or ``1`` selects the serial executor; anything larger selects
    the process-pool executor with that many workers.  ``retry``,
    ``job_timeout`` and ``faults`` configure the fault-tolerance layer
    (``job_timeout`` only applies where there is a worker process to
    reclaim).
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor(retry=retry, faults=faults)
    return ParallelExecutor(
        jobs=jobs, retry=retry, job_timeout=job_timeout, faults=faults
    )
