"""Plain-text rendering of experiment results.

The original artifact produces PDF figures; this reproduction prints the
same rows/series as aligned text tables so results can be inspected in a
terminal, captured by the benchmark harness and recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        {column: _format_value(row.get(column, ""), precision) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rendered:
        lines.append("  ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_matrix(
    matrix: Mapping[str, Mapping[str, float]],
    row_label: str = "prefetcher",
    precision: int = 3,
    column_order: Optional[Sequence[str]] = None,
) -> str:
    """Render a nested mapping ``{row: {column: value}}`` as a table."""
    rows: List[Dict[str, object]] = []
    for name, columns in matrix.items():
        row: Dict[str, object] = {row_label: name}
        row.update(columns)
        rows.append(row)
    if column_order is not None:
        columns = [row_label] + list(column_order)
    else:
        seen: List[str] = []
        for _name, cols in matrix.items():
            for key in cols:
                if key not in seen:
                    seen.append(key)
        columns = [row_label] + seen
    return format_rows(rows, columns=columns, precision=precision)


def render_result(result: object, precision: int = 3) -> str:
    """Render any figure/table/sweep result structure as text.

    The experiment layer returns three shapes: row lists (most figures and
    tables), ``{row: {column: scalar}}`` matrices (fig6/7/12, sweeps) and
    nested mappings of either (fig8, fig9, fig14, fig17).  This renderer
    dispatches on structure so the CLI can print every experiment without
    per-figure formatting code.
    """
    if isinstance(result, Sequence) and not isinstance(result, (str, bytes)):
        items = list(result)
        if items and all(isinstance(item, Mapping) for item in items):
            return format_rows(items, precision=precision)
        return "  ".join(_format_value(item, precision) for item in items)
    if isinstance(result, Mapping):
        values = list(result.values())
        if values and all(
            isinstance(v, Mapping)
            and all(not isinstance(cell, (Mapping, list)) for cell in v.values())
            for v in values
        ):
            # Stringify keys so integer-keyed results (sweep points, core
            # counts) render through the text-table machinery.
            normalized = {
                str(row): {str(col): cell for col, cell in cols.items()}
                for row, cols in result.items()
            }
            return format_matrix(normalized, precision=precision)
        sections: List[str] = []
        for key, value in result.items():
            sections.append(f"[{key}]")
            sections.append(render_result(value, precision=precision))
        return "\n".join(sections)
    return _format_value(result, precision)


def print_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    precision: int = 3,
) -> None:
    """Print an aligned text table with an optional title."""
    if title:
        print(f"\n== {title} ==")
    print(format_rows(rows, columns=columns, precision=precision))


def print_matrix(
    matrix: Mapping[str, Mapping[str, float]],
    title: str = "",
    row_label: str = "prefetcher",
    precision: int = 3,
) -> None:
    """Print a nested mapping as a table with an optional title."""
    if title:
        print(f"\n== {title} ==")
    print(format_matrix(matrix, row_label=row_label, precision=precision))
