"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.jobs` -- :class:`SimulationJob` (frozen,
  content-hashed description of one simulation; use ``job.key()`` for
  dict/set keys) and the pure ``execute_job`` worker.
* :mod:`repro.experiments.executors` -- serial and process-pool execution
  strategies with bit-identical results, per-job retry/timeout and
  structured :class:`JobFailure` slots for jobs that exhaust retries.
* :mod:`repro.experiments.cache` -- persistent, crash-safe on-disk result
  cache keyed by job content hash (``.repro-cache/``): atomic publish,
  checksummed entries, corrupt-entry quarantine.
* :mod:`repro.experiments.faults` -- seeded deterministic fault injection
  (:class:`FaultPlan`, ``REPRO_FAULT_PLAN``) for chaos-testing the
  engine/cache/executor stack.
* :mod:`repro.experiments.engine` -- cache-aware, deduplicating dispatch.
* :mod:`repro.experiments.runner` -- the figure-facing façade: runs
  (trace, prefetcher, system-config) grids through the engine.
* :mod:`repro.experiments.metrics` -- aggregation helpers (geometric-mean
  speedup per suite, average accuracy/coverage/timeliness).
* :mod:`repro.experiments.figures` -- one function per paper figure
  (``fig1`` ... ``fig18``) returning structured result rows.
* :mod:`repro.experiments.tables` -- Table I / IV / V / VI reproductions.
* :mod:`repro.experiments.sweeps` -- system-configuration sweeps (Fig. 16).
* :mod:`repro.experiments.bench` -- the kernel-throughput benchmark suite
  behind ``python -m repro bench`` and the committed ``BENCH_<n>.json``
  performance trajectory.
* :mod:`repro.experiments.reporting` -- plain-text rendering of results.

Every figure function accepts a ``scale`` argument so benchmarks can trade
fidelity for runtime; the default scale is sized for a laptop-class run.
"""

from repro.experiments.bench import compare_bench, run_bench, write_bench_file
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.executors import (
    BatchExecutionError,
    BatchOutcome,
    JobFailure,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    make_executor,
)
from repro.experiments.faults import FaultPlan, FaultRule, resolve_fault_plan
from repro.experiments.jobs import SimulationJob, execute_job
from repro.experiments.runner import ExperimentRunner, RunResult, RunScale
from repro.experiments.metrics import (
    aggregate_by_suite,
    geomean,
    normalize_to_baseline,
    summarize_runs,
)
from repro.experiments.reporting import format_rows, print_rows

__all__ = [
    "BatchExecutionError",
    "BatchOutcome",
    "ExperimentEngine",
    "ExperimentRunner",
    "FaultPlan",
    "FaultRule",
    "JobFailure",
    "ParallelExecutor",
    "ResultCache",
    "RetryPolicy",
    "RunResult",
    "RunScale",
    "SerialExecutor",
    "SimulationJob",
    "aggregate_by_suite",
    "build_engine",
    "compare_bench",
    "execute_job",
    "format_rows",
    "geomean",
    "make_executor",
    "normalize_to_baseline",
    "print_rows",
    "resolve_fault_plan",
    "run_bench",
    "summarize_runs",
    "write_bench_file",
]
