"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.experiments.runner` -- caches traces and baseline runs, runs
  (trace, prefetcher, system-config) combinations.
* :mod:`repro.experiments.metrics` -- aggregation helpers (geometric-mean
  speedup per suite, average accuracy/coverage/timeliness).
* :mod:`repro.experiments.figures` -- one function per paper figure
  (``fig1`` ... ``fig18``) returning structured result rows.
* :mod:`repro.experiments.tables` -- Table I / IV / V / VI reproductions.
* :mod:`repro.experiments.sweeps` -- system-configuration sweeps (Fig. 16).
* :mod:`repro.experiments.reporting` -- plain-text rendering of results.

Every figure function accepts a ``scale`` argument so benchmarks can trade
fidelity for runtime; the default scale is sized for a laptop-class run.
"""

from repro.experiments.runner import ExperimentRunner, RunScale
from repro.experiments.metrics import (
    aggregate_by_suite,
    geomean,
    normalize_to_baseline,
    summarize_runs,
)
from repro.experiments.reporting import format_rows, print_rows

__all__ = [
    "ExperimentRunner",
    "RunScale",
    "aggregate_by_suite",
    "format_rows",
    "geomean",
    "normalize_to_baseline",
    "print_rows",
    "summarize_runs",
]
