"""Simulation jobs: the unit of work of the experiment engine.

A :class:`SimulationJob` is a frozen, picklable, *complete* description of
one single-core simulation: which trace to generate, which prefetcher to
attach (by registry name plus keyword parameters, never a live object) and
which :class:`~repro.sim.config.SystemConfig` to run it on.  Because every
input is captured by value, a job has a deterministic content-hash key
(:meth:`SimulationJob.key` — use it, not ``hash(job)``, for dict/set
membership) that is stable across processes — the foundation for both the parallel executor
(bit-identical results regardless of worker placement) and the persistent
result cache (warm re-runs skip simulation entirely).

:class:`MixSimulationJob` is the multi-core counterpart: one frozen
description of an ``n``-core mix (a content-hashed *tuple* of trace specs,
one per core) plus the execution schedule (``exact`` or epoch-sharded).
Mix jobs flow through the same engine/executor/cache machinery, which is
what shards fig. 14 / Table VI mixes across worker processes and lets warm
re-runs answer them from the persistent cache.

:func:`execute_job` is the pure top-level worker for both job kinds: it
depends only on its argument, so ``ProcessPoolExecutor`` can ship it to
worker processes.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.hashing import content_hash
from repro.prefetchers.registry import create_prefetcher
from repro.sim.batch import BatchedTrace
from repro.sim.config import SystemConfig
from repro.sim.multicore import MIX_MODES, MultiCoreSimulator
from repro.sim.simulator import BATCH_MODES, KERNEL_MODES, simulate_trace
from repro.sim.stats import MultiCoreStats, SimulationStats
from repro.sim.types import MemoryAccess
from repro.workloads.trace import TraceSpec

#: Version salt mixed into every job key.  Bump this whenever the simulator,
#: a prefetcher, or a workload generator changes behaviour: old cache
#: entries become unreachable instead of silently stale.
#:
#: v2: multi-core stat gating — a core that exhausts its instruction budget
#: now snapshots its instruction/cycle totals and stops accumulating
#: statistics, so every multi-core counter changed; mix jobs were added.
ENGINE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class SimulationJob:
    """One (trace spec, prefetcher, system, scale) simulation request.

    ``prefetcher`` is a registry name (``"none"`` means the no-prefetching
    baseline) and ``prefetcher_params`` an ordered tuple of ``(key, value)``
    pairs forwarded to the factory, so configured designs (e.g. Gaze with a
    512 B region for Fig. 17) are expressed by value and stay picklable.

    ``batch`` selects the simulation kernel (see
    :meth:`repro.sim.simulator.SingleCoreSimulator.run`): ``"auto"`` (the
    default) runs generated traces through the batched kernel with a
    per-process decoded-trace memo, ``"off"`` forces the scalar kernel and
    ``"on"`` additionally decodes file-backed traces.  Like
    :attr:`MixSimulationJob.workers` it is an *execution* detail — results
    are bit-identical for every value — so it is deliberately excluded
    from :meth:`to_dict` and :meth:`key`.

    ``kernel`` selects the prefetcher-state tier the same way (see
    :data:`repro.sim.simulator.KERNEL_MODES`): ``"compiled"`` swaps
    flat-state prefetchers for their C twins when the optional
    :mod:`repro._kernels` extension is built, falling back silently
    otherwise.  Also bit-identical by contract, also excluded from the
    key.
    """

    spec: TraceSpec
    prefetcher: str = "none"
    system: SystemConfig = field(default_factory=SystemConfig)
    trace_length: int = 12_000
    warmup_instructions: int = 0
    max_instructions: Optional[int] = None
    prefetcher_params: Tuple[Tuple[str, object], ...] = ()
    batch: str = "auto"
    kernel: str = "auto"

    #: Execution-detail fields deliberately left out of :meth:`to_dict` /
    #: :meth:`key` — results are bit-identical for every value.  Checked
    #: by ``repro lint`` rule R1: a new field must either feed the key or
    #: be listed here on purpose.
    KEY_EXCLUDED = ("batch", "kernel")

    def __post_init__(self) -> None:
        if self.batch not in BATCH_MODES:
            raise ValueError(
                f"unknown batch mode {self.batch!r}; expected one of {BATCH_MODES}"
            )
        if self.kernel not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {self.kernel!r}; "
                f"expected one of {KERNEL_MODES}"
            )

    @property
    def is_baseline(self) -> bool:
        """True when this job simulates without any prefetcher."""
        return self.prefetcher in ("none", "", None)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data representation covering every result-affecting input.

        The spec contributes its *content identity* (file sources appear as
        ``(format, digest)`` fingerprints, not paths), so job keys — and
        therefore persistent cache entries — survive trace-file moves.
        """
        return {
            "spec": self.spec.identity_dict(),
            "prefetcher": "none" if self.is_baseline else self.prefetcher.lower(),
            "prefetcher_params": {
                key: value for key, value in sorted(self.prefetcher_params)
            },
            "system": self.system.to_dict(),
            "trace_length": self.trace_length,
            "warmup_instructions": self.warmup_instructions,
            "max_instructions": self.max_instructions,
        }

    def key(self, salt: str = "") -> str:
        """Deterministic content-hash key of this job.

        The key folds in :data:`ENGINE_SCHEMA_VERSION` plus an optional
        caller salt, so cache entries are invalidated both by engine
        upgrades and by explicit experiment-level salting.
        """
        return content_hash(
            {
                "schema": ENGINE_SCHEMA_VERSION,
                "salt": salt,
                "job": self.to_dict(),
            }
        )


@dataclass(frozen=True)
class MixSimulationJob:
    """One multi-core mix simulation request (fig. 14 / fig. 15 / Table VI).

    ``specs`` holds one :class:`~repro.workloads.trace.TraceSpec` per core
    (a homogeneous mix repeats one spec), so the job key covers the
    content-hashed trace tuple; ``mode``/``epoch_instructions`` select the
    execution schedule (see :mod:`repro.sim.multicore`) and participate in
    the key because they affect results.  ``workers`` — the thread count
    for epoch-sharded core execution — is deliberately *excluded* from the
    key: results are identical for any worker count.

    ``system`` is the per-core base configuration; the simulator scales the
    shared LLC/DRAM for ``len(specs)`` cores exactly as the paper's Table
    II does.
    """

    specs: Tuple[TraceSpec, ...]
    prefetcher: str = "none"
    system: SystemConfig = field(default_factory=SystemConfig)
    trace_length: int = 8_000
    max_instructions_per_core: int = 30_000
    mode: str = "exact"
    epoch_instructions: int = 0
    prefetcher_params: Tuple[Tuple[str, object], ...] = ()
    workers: int = 1

    #: Execution-detail fields deliberately left out of the job key (see
    #: :attr:`SimulationJob.KEY_EXCLUDED`); checked by ``repro lint`` R1.
    KEY_EXCLUDED = ("workers",)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a mix needs at least one trace spec")
        if self.mode not in MIX_MODES:
            raise ValueError(
                f"unknown mix mode {self.mode!r}; expected one of {MIX_MODES}"
            )

    @property
    def num_cores(self) -> int:
        """Number of cores in the mix (one per trace spec)."""
        return len(self.specs)

    @property
    def is_baseline(self) -> bool:
        """True when this job simulates without any prefetcher."""
        return self.prefetcher in ("none", "", None)

    @property
    def name(self) -> str:
        """Deterministic mix name derived from the job's content.

        Derived (not free-form) so that a cached result carries the same
        name a fresh simulation would produce.
        """
        prefetcher = "none" if self.is_baseline else self.prefetcher.lower()
        return f"mix{self.num_cores}[{'+'.join(s.name for s in self.specs)}]/{prefetcher}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data representation of every result-affecting input.

        ``workers`` is omitted on purpose (execution detail, not identity).
        """
        return {
            "kind": "mix",
            "specs": [spec.identity_dict() for spec in self.specs],
            "prefetcher": "none" if self.is_baseline else self.prefetcher.lower(),
            "prefetcher_params": {
                key: value for key, value in sorted(self.prefetcher_params)
            },
            "system": self.system.to_dict(),
            "trace_length": self.trace_length,
            "max_instructions_per_core": self.max_instructions_per_core,
            "mode": self.mode,
            "epoch_instructions": self.epoch_instructions,
        }

    def key(self, salt: str = "") -> str:
        """Deterministic content-hash key (schema- and salt-folded)."""
        return content_hash(
            {
                "schema": ENGINE_SCHEMA_VERSION,
                "salt": salt,
                "job": self.to_dict(),
            }
        )


#: Either job kind accepted by the engine and executors.
AnyJob = Union[SimulationJob, MixSimulationJob]

#: What one executed job yields: single-core or multi-core statistics.
JobResult = Union[SimulationStats, MultiCoreStats]


# --------------------------------------------------------------------------- #
# Worker-side trace memoization
# --------------------------------------------------------------------------- #
# Worker processes are reused across jobs, so generating each trace once per
# process (instead of once per job) removes the dominant non-simulation cost
# of a grid.  The cache is keyed by trace content, bounded, and purely a
# memoization — it never changes results.
_TRACE_CACHE: "OrderedDict[Tuple[str, int], List[MemoryAccess]]" = OrderedDict()
_TRACE_CACHE_LIMIT = 64

#: Per-process memo of array-decoded traces (see :mod:`repro.sim.batch`),
#: keyed like :data:`_TRACE_CACHE`.  Decode is pure, so this is — like the
#: trace memo — an optimization that can never change results; it keeps
#: repeated jobs over one trace (grids, bench repeats) from re-decoding.
_BATCHED_CACHE: "OrderedDict[Tuple[str, int], BatchedTrace]" = OrderedDict()


def build_trace_cached(spec: TraceSpec, length: int) -> List[MemoryAccess]:
    """Build (or fetch from the per-process memo) the trace for ``spec``.

    Shared by :func:`execute_job` and :meth:`ExperimentRunner.trace_for`, so
    one process holds at most one copy of each generated trace.
    """
    key = (spec.content_key(), length)
    cached = _TRACE_CACHE.get(key)
    if cached is None:
        cached = spec.build(length=length)
        _TRACE_CACHE[key] = cached
        while len(_TRACE_CACHE) > _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return cached


def batched_trace_cached(spec: TraceSpec, length: int) -> BatchedTrace:
    """The array-decoded form of ``spec``'s trace, memoized per process.

    Decodes from the materialized-trace memo when that entry already
    exists (free), but otherwise from a *transient* build that is not
    inserted into :data:`_TRACE_CACHE` — default ``batch="auto"``
    single-core jobs only ever read the decoded arrays, and pinning the
    much larger access-object list next to them would roughly triple the
    steady-state trace memory of every worker process.  Consumers that
    need the list (mix jobs, the runner's baseline helpers) populate the
    trace memo on demand as before.
    """
    key = (spec.content_key(), length)
    cached = _BATCHED_CACHE.get(key)
    if cached is None:
        materialized = _TRACE_CACHE.get(key)
        if materialized is None:
            materialized = spec.build(length=length)
        cached = BatchedTrace.from_accesses(materialized)
        _BATCHED_CACHE[key] = cached
        while len(_BATCHED_CACHE) > _TRACE_CACHE_LIMIT:
            _BATCHED_CACHE.popitem(last=False)
    else:
        _BATCHED_CACHE.move_to_end(key)
    return cached


def _trace_for_job(job: SimulationJob):
    """The job's trace in the shape the simulator should consume.

    Generator specs return the per-process memoized *decoded* trace (the
    batched kernel's input) unless the job opts out with ``batch="off"``,
    which falls back to the materialized list.  File-backed specs return a
    re-openable streaming handle so the simulation runs in O(1) memory
    whatever the trace length (the content digest in the job key keeps
    cache identity exact); ``batch="on"`` decodes them instead, trading the
    O(1) memory for the batched kernel's throughput.
    """
    if job.spec.source is not None:
        if job.batch == "on":
            return job.spec.batched(length=job.trace_length)
        return job.spec.replayable(length=job.trace_length)
    if job.batch == "off":
        return build_trace_cached(job.spec, job.trace_length)
    return batched_trace_cached(job.spec, job.trace_length)


def _execute_mix_job(job: MixSimulationJob) -> MultiCoreStats:
    """Run one multi-core mix job to completion and return its statistics.

    Pure with respect to ``job`` for any ``workers`` value: trace specs are
    seed-deterministic or digest-pinned, and the epoch-sharded schedule is
    deterministic under concurrency (see :mod:`repro.sim.multicore`).
    """
    traces = []
    for spec in job.specs:
        if spec.source is not None:
            # Re-openable streaming handle: the mix replays it by
            # re-opening, so file-backed cores run in O(1) memory.
            traces.append(spec.replayable(length=job.trace_length))
        else:
            traces.append(build_trace_cached(spec, job.trace_length))
    if job.is_baseline:
        prefetcher_factory = None
    else:
        params = dict(job.prefetcher_params)
        prefetcher_factory = lambda: create_prefetcher(job.prefetcher, **params)  # noqa: E731
    simulator = MultiCoreSimulator(
        num_cores=job.num_cores,
        prefetcher_factory=prefetcher_factory,
        config=job.system,
        name=job.name,
    )
    return simulator.run(
        traces,
        max_instructions_per_core=job.max_instructions_per_core,
        mode=job.mode,
        epoch_instructions=job.epoch_instructions,
        workers=job.workers,
    )


def execute_job(
    job: AnyJob, record_timing: bool = False
) -> Union[SimulationStats, MultiCoreStats]:
    """Run one job (single-core or mix) to completion and return its stats.

    Pure with respect to ``job``: trace generation is seed-deterministic
    (and file-backed traces are digest-pinned), so any process executing
    the same job produces identical statistics.

    With ``record_timing`` the wall-clock cost of the simulation phase is
    reported into the result's ``extra`` dict (``wall_time_s`` and
    ``accesses_per_sec``).  Timing is opt-in — the engine and executors run
    without it — because cached results must stay bit-identical to fresh
    runs, and wall time is the one quantity that never is.  The benchmark
    harness (``python -m repro bench``) is the consumer.  Mix jobs ignore
    ``record_timing`` (:class:`~repro.sim.stats.MultiCoreStats` carries no
    ``extra`` dict; the bench harness times them externally).
    """
    if isinstance(job, MixSimulationJob):
        return _execute_mix_job(job)
    trace = _trace_for_job(job)
    if job.is_baseline:
        prefetcher = None
    else:
        prefetcher = create_prefetcher(
            job.prefetcher, **dict(job.prefetcher_params)
        )
    start = time.perf_counter() if record_timing else 0.0
    stats = simulate_trace(
        trace,
        prefetcher=prefetcher,
        config=job.system,
        max_instructions=job.max_instructions,
        warmup_instructions=job.warmup_instructions,
        name=job.spec.name,
        batch=job.batch,
        kernel=job.kernel,
        record_tier=record_timing,
    )
    if record_timing:
        wall = time.perf_counter() - start
        stats.extra["wall_time_s"] = wall
        stats.extra["accesses_per_sec"] = (
            stats.demand_accesses / wall if wall > 0 else 0.0
        )
    return stats
