"""Aggregation helpers for experiment results."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.experiments.runner import RunResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def summarize_runs(results: Sequence[RunResult]) -> Dict[str, Dict[str, float]]:
    """Per-prefetcher summary across all traces in ``results``.

    Returns ``{prefetcher: {speedup, accuracy, coverage, late_fraction}}``
    where speedup is the geometric mean (matching the paper's methodology)
    and the other metrics are arithmetic means.
    """
    by_prefetcher: Dict[str, List[RunResult]] = defaultdict(list)
    for result in results:
        by_prefetcher[result.prefetcher].append(result)
    summary: Dict[str, Dict[str, float]] = {}
    for prefetcher, rows in by_prefetcher.items():
        summary[prefetcher] = {
            "speedup": geomean(r.speedup for r in rows),
            "accuracy": arithmetic_mean(r.accuracy for r in rows),
            "coverage": arithmetic_mean(r.coverage for r in rows),
            "late_fraction": arithmetic_mean(r.late_fraction for r in rows),
            "traces": float(len(rows)),
        }
    return summary


def aggregate_by_suite(
    results: Sequence[RunResult], metric: str = "speedup"
) -> Dict[str, Dict[str, float]]:
    """``{prefetcher: {suite: aggregated metric}}`` across the results.

    Speedups aggregate geometrically, everything else arithmetically.
    """
    grouped: Dict[str, Dict[str, List[float]]] = defaultdict(lambda: defaultdict(list))
    for result in results:
        grouped[result.prefetcher][result.spec.suite].append(getattr(result, metric))
    aggregated: Dict[str, Dict[str, float]] = {}
    for prefetcher, suites in grouped.items():
        aggregated[prefetcher] = {}
        for suite, values in suites.items():
            if metric == "speedup":
                aggregated[prefetcher][suite] = geomean(values)
            else:
                aggregated[prefetcher][suite] = arithmetic_mean(values)
        all_values = [v for values in suites.values() for v in values]
        aggregated[prefetcher]["avg"] = (
            geomean(all_values) if metric == "speedup" else arithmetic_mean(all_values)
        )
    return aggregated


def normalize_to_baseline(
    summary: Mapping[str, Mapping[str, float]], baseline: str, metric: str = "speedup"
) -> Dict[str, float]:
    """Express one metric of every prefetcher relative to ``baseline``'s."""
    if baseline not in summary:
        raise KeyError(f"baseline {baseline!r} not present in summary")
    reference = summary[baseline][metric]
    if reference == 0:
        return {name: 0.0 for name in summary}
    return {name: row[metric] / reference for name, row in summary.items()}


def best_prefetcher(
    summary: Mapping[str, Mapping[str, float]], metric: str = "speedup"
) -> str:
    """Name of the prefetcher with the highest value of ``metric``."""
    return max(summary, key=lambda name: summary[name][metric])
