"""Table reproductions (Tables I, IV, V and VI of the paper)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.storage import (
    GAZE_STORAGE_BREAKDOWN,
    baseline_storage_table,
    gaze_storage_breakdown,
)
from repro.experiments.metrics import summarize_runs
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.workloads.suites import MAIN_SUITES


def table1_gaze_storage() -> List[Dict[str, object]]:
    """Table I: Gaze's per-structure storage (measured vs paper)."""
    measured = gaze_storage_breakdown()
    rows: List[Dict[str, object]] = []
    for structure, paper_bytes in GAZE_STORAGE_BREAKDOWN.items():
        rows.append(
            {
                "structure": structure,
                "measured_bytes": round(measured[structure], 1),
                "paper_bytes": paper_bytes,
            }
        )
    rows.append(
        {
            "structure": "Total",
            "measured_bytes": round(measured["Total"], 1),
            "paper_bytes": sum(GAZE_STORAGE_BREAKDOWN.values()),
        }
    )
    return rows


def table4_baseline_storage() -> List[Dict[str, object]]:
    """Table IV: configuration storage overhead of every evaluated prefetcher."""
    return baseline_storage_table()


def table5_comparison(
    runner: Optional[ExperimentRunner] = None,
    simple_suites: Sequence[str] = ("spec06", "spec17"),
    complex_suites: Sequence[str] = ("cloud",),
    prefetchers: Sequence[str] = ("gaze", "vberti", "pmp", "bingo"),
    low_cost_threshold_kib: float = 10.0,
) -> List[Dict[str, object]]:
    """Table V: qualitative comparison derived from measured results.

    A prefetcher gets a check mark for "simple patterns" / "complex
    patterns" when its geometric-mean speedup on the corresponding suites is
    positive (>= 2% improvement), and for hardware cost when its storage is
    below ``low_cost_threshold_kib``.
    """
    runner = runner if runner is not None else ExperimentRunner(RunScale())
    from repro.prefetchers.registry import create_prefetcher

    simple_results = summarize_runs(runner.run_suites(simple_suites, prefetchers))
    complex_results = summarize_runs(runner.run_suites(complex_suites, prefetchers))
    rows: List[Dict[str, object]] = []
    for name in prefetchers:
        storage = create_prefetcher(name).storage_kib()
        rows.append(
            {
                "prefetcher": name,
                "low_hardware_cost": storage <= low_cost_threshold_kib,
                "storage_kib": round(storage, 2),
                "simple_pattern_ok": simple_results[name]["speedup"] >= 1.02,
                "simple_speedup": simple_results[name]["speedup"],
                "complex_pattern_ok": complex_results[name]["speedup"] >= 1.02,
                "complex_speedup": complex_results[name]["speedup"],
            }
        )
    return rows


def table6_four_core_mixes() -> List[Dict[str, object]]:
    """Table VI: the composition of the selected four-core mixes."""
    from repro.experiments.figures import FOUR_CORE_MIXES

    return [
        {"mix": name, "traces": ", ".join(traces)}
        for name, traces in FOUR_CORE_MIXES.items()
    ]
