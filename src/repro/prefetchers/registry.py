"""Name → factory registry for every prefetcher evaluated in the paper.

The names follow the labels used in the paper's figures so that experiment
definitions (``repro.experiments``) can refer to prefetchers by the same
strings the paper uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BestOffsetPrefetcher
from repro.prefetchers.dspatch import DSPatchPrefetcher
from repro.prefetchers.ip_stride import IPStridePrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.multilevel import MultiLevelPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.no_prefetch import NoPrefetcher
from repro.prefetchers.pmp import PMPPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.spp import SPPPrefetcher
from repro.prefetchers.temporal import GHBMarkovPrefetcher, TriangelPrefetcher

PrefetcherFactory = Callable[..., Prefetcher]

_REGISTRY: Dict[str, PrefetcherFactory] = {}


def register_prefetcher(name: str, factory: PrefetcherFactory) -> None:
    """Register (or replace) a prefetcher factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def create_prefetcher(name: str, **params) -> Prefetcher:
    """Instantiate the prefetcher registered as ``name``.

    Composite names of the form ``"<l1>+<l2>"`` build a
    :class:`MultiLevelPrefetcher` from two registered designs (Fig. 13).

    ``params`` are forwarded to the registered factory, so callers (most
    importantly the job engine, which ships only picklable descriptions of
    work to worker processes) can request configured instances by value:
    ``create_prefetcher("gaze", region_size=512)`` builds a
    :class:`~repro.core.gaze.GazePrefetcher` with a matching
    :class:`~repro.core.gaze.GazeConfig`.
    """
    key = name.lower()
    if key in _REGISTRY:
        factory = _REGISTRY[key]
        return factory(**params) if params else factory()
    if "+" in key:
        if params:
            raise ValueError(
                f"composite prefetcher {name!r} does not accept parameters"
            )
        l1_name, l2_name = key.split("+", 1)
        return MultiLevelPrefetcher(
            create_prefetcher(l1_name), create_prefetcher(l2_name)
        )
    raise KeyError(
        f"unknown prefetcher {name!r}; known: {', '.join(sorted(_REGISTRY))}"
    )


def available_prefetchers() -> List[str]:
    """Names of all registered single-level prefetchers."""
    return sorted(_REGISTRY)


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a prefetcher, without instantiating it.

    Accepts the same composite ``"<l1>+<l2>"`` forms as
    :func:`create_prefetcher`.
    """
    key = name.lower()
    if key in _REGISTRY:
        return True
    if "+" in key:
        l1_name, l2_name = key.split("+", 1)
        return is_registered(l1_name) and is_registered(l2_name)
    return False


#: Valid values of the ``state`` knob accepted by the flat-capable
#: factories (``gaze``, ``vberti``).
STATE_MODES = ("auto", "flat", "object")


def _pop_state(kwargs: dict) -> str:
    """Extract and validate the ``state`` knob from factory kwargs."""
    state = kwargs.pop("state", "auto")
    if state not in STATE_MODES:
        raise ValueError(
            f"unknown prefetcher state {state!r}; expected one of {STATE_MODES}"
        )
    return state


def _make_vberti(**kwargs) -> Prefetcher:
    """vBerti factory honouring the ``state`` knob (flat by default)."""
    state = _pop_state(kwargs)
    if state == "object":
        return BertiPrefetcher(**kwargs)
    from repro.prefetchers.arrays import FlatBertiPrefetcher

    return FlatBertiPrefetcher(**kwargs)


def _make_gaze(variant: str, **kwargs) -> Prefetcher:
    """Instantiate a Gaze variant, importing :mod:`repro.core` lazily.

    The lazy import avoids a circular dependency: ``repro.core`` modules use
    the table primitives of this package, so Gaze classes cannot be imported
    while ``repro.prefetchers`` itself is still initialising.
    """
    from repro.core.gaze import GazePrefetcher
    from repro.core.variants import (
        GazePHTOnly,
        NInitialAccessGaze,
        OffsetOnlyPrefetcher,
        PCAddressPrefetcher,
        PCOnlyPrefetcher,
        StreamingOnlyGaze,
        VirtualGaze,
    )

    if variant == "gaze":
        # Keyword arguments are GazeConfig fields (Fig. 17 sweeps region and
        # PHT sizes through here without shipping live objects to workers).
        # ``state`` selects the table representation: "flat" (array-backed,
        # packed-request protocol), "object" (the original dataclass
        # tables), or "auto" (default) which picks flat whenever the
        # geometry supports it — both are bit-exact, so this is purely a
        # performance knob.
        from repro.core.gaze import GazeConfig

        state = _pop_state(kwargs)
        config = GazeConfig(**kwargs) if kwargs else None
        if state == "object" or (
            state == "auto" and (config is not None and config.region_size % 64)
        ):
            return GazePrefetcher(config) if config is not None else GazePrefetcher()
        from repro.prefetchers.arrays import FlatGazePrefetcher

        return FlatGazePrefetcher(config)

    # Every entry forwards kwargs, so configured creation either applies the
    # parameters or raises TypeError — never silently runs the default.
    constructors = {
        "gaze-pht": GazePHTOnly,
        "offset": OffsetOnlyPrefetcher,
        "pc": PCOnlyPrefetcher,
        "pc+addr": PCAddressPrefetcher,
        "pht4ss": lambda **kw: StreamingOnlyGaze(use_streaming_module=False, **kw),
        "sm4ss": lambda **kw: StreamingOnlyGaze(use_streaming_module=True, **kw),
        "gaze-n": NInitialAccessGaze,
        "vgaze": VirtualGaze,
    }
    return constructors[variant](**kwargs)


def _register_defaults() -> None:
    # Baselines and state-of-the-art designs from Table IV.
    register_prefetcher("none", NoPrefetcher)
    register_prefetcher("next-line", NextLinePrefetcher)
    register_prefetcher("ip-stride", IPStridePrefetcher)
    register_prefetcher("bop", BestOffsetPrefetcher)
    register_prefetcher("sms", SMSPrefetcher)
    register_prefetcher("bingo", BingoPrefetcher)
    register_prefetcher("dspatch", DSPatchPrefetcher)
    register_prefetcher("pmp", PMPPrefetcher)
    register_prefetcher("ipcp", IPCPPrefetcher)
    register_prefetcher("ipcp-l1", IPCPPrefetcher)
    register_prefetcher("spp-ppf", SPPPrefetcher)
    register_prefetcher("vberti", _make_vberti)

    # The temporal (address-correlating) tier: the other side of the
    # paper's spatial-vs-temporal line (PAPERS.md: Triangel; GHB G/AC as
    # the classic Markov baseline).
    register_prefetcher("triangel", TriangelPrefetcher)
    register_prefetcher("ghb", GHBMarkovPrefetcher)

    # Gaze and its ablations, resolved lazily (see :func:`_make_gaze`).
    for variant in ("gaze", "gaze-pht", "offset", "pc", "pc+addr", "pht4ss", "sm4ss"):
        register_prefetcher(
            variant, lambda variant=variant, **kwargs: _make_gaze(variant, **kwargs)
        )
    for n in range(1, 5):
        register_prefetcher(
            f"gaze-n{n}", lambda n=n, **kwargs: _make_gaze("gaze-n", n=n, **kwargs)
        )
    for size_kb in (4, 8, 16, 32, 64):
        register_prefetcher(
            f"vgaze-{size_kb}kb",
            lambda size_kb=size_kb, **kwargs: _make_gaze(
                "vgaze", region_size=size_kb * 1024, **kwargs
            ),
        )


_register_defaults()
