"""Name → factory registry for every prefetcher evaluated in the paper.

The names follow the labels used in the paper's figures so that experiment
definitions (``repro.experiments``) can refer to prefetchers by the same
strings the paper uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BestOffsetPrefetcher
from repro.prefetchers.dspatch import DSPatchPrefetcher
from repro.prefetchers.ip_stride import IPStridePrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.multilevel import MultiLevelPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.no_prefetch import NoPrefetcher
from repro.prefetchers.pmp import PMPPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.spp import SPPPrefetcher

PrefetcherFactory = Callable[[], Prefetcher]

_REGISTRY: Dict[str, PrefetcherFactory] = {}


def register_prefetcher(name: str, factory: PrefetcherFactory) -> None:
    """Register (or replace) a prefetcher factory under ``name``."""
    _REGISTRY[name.lower()] = factory


def create_prefetcher(name: str) -> Prefetcher:
    """Instantiate the prefetcher registered as ``name``.

    Composite names of the form ``"<l1>+<l2>"`` build a
    :class:`MultiLevelPrefetcher` from two registered designs (Fig. 13).
    """
    key = name.lower()
    if key in _REGISTRY:
        return _REGISTRY[key]()
    if "+" in key:
        l1_name, l2_name = key.split("+", 1)
        return MultiLevelPrefetcher(
            create_prefetcher(l1_name), create_prefetcher(l2_name)
        )
    raise KeyError(
        f"unknown prefetcher {name!r}; known: {', '.join(sorted(_REGISTRY))}"
    )


def available_prefetchers() -> List[str]:
    """Names of all registered single-level prefetchers."""
    return sorted(_REGISTRY)


def _make_gaze(variant: str, **kwargs) -> Prefetcher:
    """Instantiate a Gaze variant, importing :mod:`repro.core` lazily.

    The lazy import avoids a circular dependency: ``repro.core`` modules use
    the table primitives of this package, so Gaze classes cannot be imported
    while ``repro.prefetchers`` itself is still initialising.
    """
    from repro.core.gaze import GazePrefetcher
    from repro.core.variants import (
        GazePHTOnly,
        NInitialAccessGaze,
        OffsetOnlyPrefetcher,
        PCAddressPrefetcher,
        PCOnlyPrefetcher,
        StreamingOnlyGaze,
        VirtualGaze,
    )

    constructors = {
        "gaze": GazePrefetcher,
        "gaze-pht": GazePHTOnly,
        "offset": OffsetOnlyPrefetcher,
        "pc": PCOnlyPrefetcher,
        "pc+addr": PCAddressPrefetcher,
        "pht4ss": lambda: StreamingOnlyGaze(use_streaming_module=False),
        "sm4ss": lambda: StreamingOnlyGaze(use_streaming_module=True),
        "gaze-n": lambda: NInitialAccessGaze(**kwargs),
        "vgaze": lambda: VirtualGaze(**kwargs),
    }
    return constructors[variant]()


def _register_defaults() -> None:
    # Baselines and state-of-the-art designs from Table IV.
    register_prefetcher("none", NoPrefetcher)
    register_prefetcher("next-line", NextLinePrefetcher)
    register_prefetcher("ip-stride", IPStridePrefetcher)
    register_prefetcher("bop", BestOffsetPrefetcher)
    register_prefetcher("sms", SMSPrefetcher)
    register_prefetcher("bingo", BingoPrefetcher)
    register_prefetcher("dspatch", DSPatchPrefetcher)
    register_prefetcher("pmp", PMPPrefetcher)
    register_prefetcher("ipcp", IPCPPrefetcher)
    register_prefetcher("ipcp-l1", IPCPPrefetcher)
    register_prefetcher("spp-ppf", SPPPrefetcher)
    register_prefetcher("vberti", BertiPrefetcher)

    # Gaze and its ablations, resolved lazily (see :func:`_make_gaze`).
    for variant in ("gaze", "gaze-pht", "offset", "pc", "pc+addr", "pht4ss", "sm4ss"):
        register_prefetcher(variant, lambda variant=variant: _make_gaze(variant))
    for n in range(1, 5):
        register_prefetcher(
            f"gaze-n{n}", lambda n=n: _make_gaze("gaze-n", n=n)
        )
    for size_kb in (4, 8, 16, 32, 64):
        register_prefetcher(
            f"vgaze-{size_kb}kb",
            lambda size_kb=size_kb: _make_gaze("vgaze", region_size=size_kb * 1024),
        )


_register_defaults()
