"""The no-prefetching baseline used as the speedup denominator."""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import StatelessPrefetcher
from repro.sim.types import AccessResult, PrefetchRequest


class NoPrefetcher(StatelessPrefetcher):
    """Issues no prefetches; the paper's baseline configuration."""

    name = "none"

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        return []
