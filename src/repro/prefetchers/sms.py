"""Spatial Memory Streaming (SMS), Somogyi et al., ISCA 2006.

SMS learns the spatial footprint of each region and indexes its pattern
history table with the fine-grained event ``PC + trigger offset``.  Learned
footprints are stored *rotated* so that the trigger offset sits at position
zero; on a prediction the pattern is rotated back to the new trigger offset.
Prefetching is awakened by the trigger (first) access to a region.

The evaluated configuration follows Table IV of the paper: 2 KB regions,
64-entry FT/AT, a 16k-entry PHT and a 32-entry prefetch buffer; the huge PHT
is what pushes SMS past 100 KB of storage.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import (
    RegionTracker,
    pattern_to_requests,
    rotate_footprint,
)
from repro.prefetchers.tables import LRUTable
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest


class SMSPrefetcher(Prefetcher):
    """PC+Offset indexed spatial footprint prefetcher."""

    name = "sms"

    def __init__(
        self,
        region_size: int = 2048,
        filter_entries: int = 64,
        accumulation_entries: int = 64,
        pht_entries: int = 16384,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.tracker = RegionTracker(
            region_size=region_size,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )
        self.pht: LRUTable[tuple, int] = LRUTable(pht_entries)

    # ------------------------------------------------------------------ #
    def _event(self, pc: int, offset: int) -> tuple:
        return (pc & 0xFFFF, offset)

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        trigger, _activation, deactivations, _entry = self.tracker.observe(pc, address)

        for event in deactivations:
            self._learn(event.trigger_pc, event.trigger_offset, event.footprint)

        if trigger is None:
            return []

        anchored = self.pht.get(self._event(trigger.pc, trigger.offset))
        if anchored is None:
            return []
        footprint = rotate_footprint(anchored, trigger.offset, self.blocks)
        return pattern_to_requests(
            region=trigger.region,
            footprint=footprint,
            region_size=self.region_size,
            hint=PrefetchHint.L1,
            exclude_offsets=(trigger.offset,),
            pc=trigger.pc,
            metadata="sms",
        )

    def _learn(self, trigger_pc: int, trigger_offset: int, footprint: int) -> None:
        anchored = rotate_footprint(footprint, -trigger_offset, self.blocks)
        self.pht.put(self._event(trigger_pc, trigger_offset), anchored)

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            self._learn(event.trigger_pc, event.trigger_offset, event.footprint)

    def storage_bits(self) -> int:
        # FT: 64 x (tag 36 + lru 3 + pc 16 + off 5); AT adds the bit vector;
        # PHT: entries x (tag ~16 + lru + pattern bits); PB: 32 x pattern.
        ft = 64 * (36 + 3 + 16 + 5)
        at = 64 * (36 + 3 + 16 + 5 + self.blocks)
        pht = self.pht.capacity * (16 + 2 + self.blocks)
        pb = 32 * (36 + 3 + 2 * self.blocks)
        return ft + at + pht + pb

    def reset(self) -> None:
        self.tracker.reset()
        self.pht.clear()
