"""IP-stride prefetcher.

The widely deployed commercial baseline (Doweck, "Inside Intel Core
Microarchitecture and Smart Memory Access"): a per-PC table records the last
address and last stride of each load instruction; when the same stride is
observed twice in a row the prefetcher issues ``degree`` prefetches along
that stride.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
)


@dataclass(slots=True)
class _IPEntry:
    last_block: int
    stride: int = 0
    confidence: int = 0


class IPStridePrefetcher(Prefetcher):
    """Per-PC constant-stride prefetcher with a small confidence counter."""

    name = "ip-stride"

    def __init__(
        self,
        table_entries: int = 64,
        degree: int = 3,
        confidence_threshold: int = 2,
        max_confidence: int = 3,
    ) -> None:
        self.table: LRUTable[int, _IPEntry] = LRUTable(table_entries)
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.max_confidence = max_confidence

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        block = block_number(address)
        entry = self.table.get(pc)
        if entry is None:
            self.table.put(pc, _IPEntry(last_block=block))
            return []

        stride = block - entry.last_block
        requests: List[PrefetchRequest] = []
        if stride != 0:
            if stride == entry.stride:
                entry.confidence = min(self.max_confidence, entry.confidence + 1)
            else:
                entry.confidence = max(0, entry.confidence - 1)
                if entry.confidence == 0:
                    entry.stride = stride
            if entry.confidence >= self.confidence_threshold and entry.stride != 0:
                for i in range(1, self.degree + 1):
                    target = block + entry.stride * i
                    if target < 0:
                        break
                    requests.append(
                        self.request(target * BLOCK_SIZE, PrefetchHint.L1, pc)
                    )
        entry.last_block = block
        return requests

    def storage_bits(self) -> int:
        # Per entry: PC tag (16b) + last block (58b) + stride (7b) + conf (2b).
        return self.table.capacity * (16 + 58 + 7 + 2)

    def reset(self) -> None:
        self.table.clear()
