"""Multi-level prefetching combinations (paper §IV-B5, Fig. 13).

The paper evaluates pairs of prefetchers, one trained at the L1D and one at
the L2C.  In this reproduction both components observe the same demand-load
stream (our hierarchy is driven from the L1D), but the L2 component's
requests are demoted to L2 fills and it is only trained on accesses that
*miss* the L1D -- which is the information an L2-resident prefetcher would
see.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest


class MultiLevelPrefetcher(Prefetcher):
    """Combines an L1D prefetcher with an L2C prefetcher."""

    def __init__(self, l1_prefetcher: Prefetcher, l2_prefetcher: Prefetcher) -> None:
        self.l1 = l1_prefetcher
        self.l2 = l2_prefetcher
        self.name = f"{l1_prefetcher.name}+{l2_prefetcher.name}"

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        requests = list(self.l1.train(pc, address, cycle, result))

        l1_missed = result is None or result.hit_level != "L1D"
        if l1_missed:
            for request in self.l2.train(pc, address, cycle, result):
                requests.append(
                    PrefetchRequest(
                        address=request.address,
                        hint=PrefetchHint.L2,
                        origin_pc=request.origin_pc,
                        metadata=f"l2:{request.metadata or self.l2.name}",
                    )
                )
        return requests

    def on_cache_eviction(self, block: int) -> None:
        self.l1.on_cache_eviction(block)
        self.l2.on_cache_eviction(block)

    def storage_bits(self) -> int:
        return self.l1.storage_bits() + self.l2.storage_bits()

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
