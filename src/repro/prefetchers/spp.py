"""Signature Path Prefetcher with Perceptron Prefetch Filtering (SPP-PPF).

SPP (Kim et al., MICRO 2016) compresses the recent delta history of each
physical page into a 12-bit *signature*; a pattern table maps signatures to
candidate next deltas with confidence counters, and the prefetcher walks the
signature path in a lookahead fashion, multiplying per-step confidences
until the path confidence falls below a threshold.

PPF (Bhatia et al., ISCA 2019) adds a perceptron filter that decides, per
candidate prefetch, whether it is likely to be useful.  The reproduction
implements a compact perceptron over (signature, delta, offset) features and
trains it online from the hierarchy feedback embedded in the demand stream
(a candidate is rewarded when a later demand touches it, penalised when it
ages out unreferenced).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
    block_offset_in_region,
    region_number,
)


@dataclass(slots=True)
class _SignatureEntry:
    """Per-page state in the signature table."""

    signature: int = 0
    last_offset: int = -1


@dataclass(slots=True)
class _PatternEntry:
    """Candidate deltas (with confidence) for one signature."""

    deltas: Dict[int, int] = field(default_factory=dict)
    total: int = 0

    def update(self, delta: int) -> None:
        self.deltas[delta] = self.deltas.get(delta, 0) + 1
        self.total += 1
        if self.total >= 64:
            # Periodic halving keeps the counters adaptive.
            self.deltas = {d: max(1, c // 2) for d, c in self.deltas.items()}
            self.total = sum(self.deltas.values())

    def best(self) -> Optional[Tuple[int, float]]:
        if not self.deltas or self.total == 0:
            return None
        delta, count = max(self.deltas.items(), key=lambda item: item[1])
        return delta, count / self.total


class _PerceptronFilter:
    """Tiny perceptron deciding whether a candidate prefetch is worthwhile."""

    def __init__(self, table_size: int = 1024, threshold: int = 0) -> None:
        self.table_size = table_size
        self.threshold = threshold
        self.weights_signature = [0] * table_size
        self.weights_delta = [0] * table_size
        self.weights_offset = [0] * 64
        self._pending: LRUTable[int, Tuple[int, int, int]] = LRUTable(256)

    def _indices(self, signature: int, delta: int, offset: int) -> Tuple[int, int, int]:
        return (
            signature % self.table_size,
            (delta * 2654435761) % self.table_size,
            offset % 64,
        )

    def score(self, signature: int, delta: int, offset: int) -> int:
        i, j, k = self._indices(signature, delta, offset)
        return (
            self.weights_signature[i] + self.weights_delta[j] + self.weights_offset[k]
        )

    def accept(self, signature: int, delta: int, offset: int) -> bool:
        return self.score(signature, delta, offset) >= self.threshold

    def record_issue(self, block: int, signature: int, delta: int, offset: int) -> None:
        evicted = self._pending.put(block, (signature, delta, offset))
        if evicted is not None:
            self._train(*evicted[1], reward=False)

    def record_demand(self, block: int) -> None:
        features = self._pending.pop(block)
        if features is not None:
            self._train(*features, reward=True)

    def _train(self, signature: int, delta: int, offset: int, reward: bool) -> None:
        i, j, k = self._indices(signature, delta, offset)
        step = 1 if reward else -1
        self.weights_signature[i] = max(-32, min(31, self.weights_signature[i] + step))
        self.weights_delta[j] = max(-32, min(31, self.weights_delta[j] + step))
        self.weights_offset[k] = max(-32, min(31, self.weights_offset[k] + step))

    def reset(self) -> None:
        self.weights_signature = [0] * self.table_size
        self.weights_delta = [0] * self.table_size
        self.weights_offset = [0] * 64
        self._pending.clear()


class SPPPrefetcher(Prefetcher):
    """Lookahead signature-path prefetcher with a perceptron filter."""

    name = "spp-ppf"

    def __init__(
        self,
        signature_table_entries: int = 256,
        pattern_table_entries: int = 512,
        region_size: int = 4096,
        lookahead_threshold: float = 0.25,
        fill_l1_threshold: float = 0.60,
        max_lookahead: int = 6,
        use_perceptron: bool = True,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.signature_table: LRUTable[int, _SignatureEntry] = LRUTable(
            signature_table_entries
        )
        self.pattern_table: LRUTable[int, _PatternEntry] = LRUTable(
            pattern_table_entries
        )
        self.lookahead_threshold = lookahead_threshold
        self.fill_l1_threshold = fill_l1_threshold
        self.max_lookahead = max_lookahead
        self.use_perceptron = use_perceptron
        self.filter = _PerceptronFilter()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _update_signature(signature: int, delta: int) -> int:
        return ((signature << 3) ^ (delta & 0x7F)) & 0xFFF

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        block = block_number(address)
        page = region_number(address, self.region_size)
        offset = block_offset_in_region(address, self.region_size)

        if self.use_perceptron:
            self.filter.record_demand(block)

        entry = self.signature_table.get(page)
        if entry is None:
            self.signature_table.put(
                page, _SignatureEntry(signature=0, last_offset=offset)
            )
            return []

        delta = offset - entry.last_offset
        if delta == 0:
            return []

        pattern = self.pattern_table.get(entry.signature)
        if pattern is None:
            pattern = _PatternEntry()
            self.pattern_table.put(entry.signature, pattern)
        pattern.update(delta)

        entry.signature = self._update_signature(entry.signature, delta)
        entry.last_offset = offset

        return self._lookahead(page, offset, entry.signature, pc)

    def _lookahead(
        self, page: int, offset: int, signature: int, pc: int
    ) -> List[PrefetchRequest]:
        requests: List[PrefetchRequest] = []
        confidence = 1.0
        current_offset = offset
        current_signature = signature
        for _step in range(self.max_lookahead):
            pattern = self.pattern_table.get(current_signature, touch=False)
            if pattern is None:
                break
            best = pattern.best()
            if best is None:
                break
            delta, probability = best
            confidence *= probability
            if confidence < self.lookahead_threshold:
                break
            next_offset = current_offset + delta
            if next_offset < 0 or next_offset >= self.blocks:
                break
            target_block = page * self.blocks + next_offset
            if not self.use_perceptron or self.filter.accept(
                current_signature, delta, next_offset
            ):
                hint = (
                    PrefetchHint.L1
                    if confidence >= self.fill_l1_threshold
                    else PrefetchHint.L2
                )
                requests.append(
                    self.request(target_block * BLOCK_SIZE, hint, pc, "spp")
                )
                if self.use_perceptron:
                    self.filter.record_issue(
                        target_block, current_signature, delta, next_offset
                    )
            current_offset = next_offset
            current_signature = self._update_signature(current_signature, delta)
        return requests

    def storage_bits(self) -> int:
        st = self.signature_table.capacity * (16 + 12 + 6)
        pt = self.pattern_table.capacity * (4 * (7 + 4))
        ppf = (2 * self.filter.table_size + 64) * 6
        return st + pt + ppf

    def reset(self) -> None:
        self.signature_table.clear()
        self.pattern_table.clear()
        self.filter.reset()
