"""Hardware-style table primitives shared by the prefetchers.

Two flavours are provided:

* :class:`LRUTable` -- a fully-associative table with true-LRU replacement
  (used for small structures such as filter tables and IP tables);
* :class:`SetAssociativeTable` -- a set-associative table with per-set LRU
  (used for pattern history tables), where the caller controls how keys map
  to set indices and tags.

Both are deliberately simple dictionaries under the hood; what matters for
the reproduction is that capacity limits and replacement order match the
hardware structures whose storage budgets Table I / Table IV account for.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUTable(Generic[K, V]):
    """Fully-associative table with LRU replacement."""

    __slots__ = ("capacity", "_entries", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K, touch: bool = True) -> Optional[V]:
        """Return the value for ``key`` (refreshing LRU unless ``touch=False``).

        Stored values must not be ``None`` (``None`` means "absent"); no
        caller stores ``None`` and the hot path relies on it.
        """
        entries = self._entries
        value = entries.get(key)
        if value is None:
            return None
        if touch:
            entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/update ``key``; return the evicted ``(key, value)`` if any."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            entries[key] = value
            return None
        evicted: Optional[Tuple[K, V]] = None
        if len(entries) >= self.capacity:
            evicted = entries.popitem(last=False)
            self.evictions += 1
        entries[key] = value
        return evicted

    def pop(self, key: K) -> Optional[V]:
        """Remove and return the value for ``key`` (None if absent)."""
        return self._entries.pop(key, None)

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over (key, value) pairs from LRU to MRU."""
        return iter(self._entries.items())

    def values(self) -> Iterator[V]:
        """Iterate over values from LRU to MRU."""
        return iter(self._entries.values())

    def keys(self) -> Iterator[K]:
        """Iterate over keys from LRU to MRU."""
        return iter(self._entries.keys())

    def clear(self) -> None:
        """Remove all entries."""
        self._entries.clear()

    def lru_key(self) -> Optional[K]:
        """Return the least-recently-used key (None when empty)."""
        if not self._entries:
            return None
        return next(iter(self._entries))


class SetAssociativeTable(Generic[V]):
    """Set-associative table with per-set LRU replacement.

    Keys are ``(set_index, tag)`` pairs supplied by the caller; the table
    enforces ``sets * ways`` total capacity with at most ``ways`` entries per
    set.
    """

    __slots__ = ("sets", "ways", "_data", "evictions")

    def __init__(self, sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        self.sets = sets
        self.ways = ways
        self._data: List["OrderedDict[int, V]"] = [OrderedDict() for _ in range(sets)]
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Total number of entries the table can hold."""
        return self.sets * self.ways

    def __len__(self) -> int:
        return sum(len(s) for s in self._data)

    def _set_for(self, set_index: int) -> "OrderedDict[int, V]":
        return self._data[set_index % self.sets]

    def get(self, set_index: int, tag: int, touch: bool = True) -> Optional[V]:
        """Look up ``(set_index, tag)``; refresh LRU on hit unless disabled.

        As with :meth:`LRUTable.get`, stored values must not be ``None``.
        """
        entries = self._data[set_index % self.sets]
        value = entries.get(tag)
        if value is None:
            return None
        if touch:
            entries.move_to_end(tag)
        return value

    def put(self, set_index: int, tag: int, value: V) -> Optional[Tuple[int, V]]:
        """Insert/update an entry; return the evicted ``(tag, value)`` if any."""
        entries = self._set_for(set_index)
        evicted: Optional[Tuple[int, V]] = None
        if tag in entries:
            entries.move_to_end(tag)
            entries[tag] = value
            return None
        if len(entries) >= self.ways:
            evicted = entries.popitem(last=False)
            self.evictions += 1
        entries[tag] = value
        return evicted

    def pop(self, set_index: int, tag: int) -> Optional[V]:
        """Remove and return an entry (None if absent)."""
        return self._set_for(set_index).pop(tag, None)

    def entries_in_set(self, set_index: int) -> List[Tuple[int, V]]:
        """Return all (tag, value) pairs of one set, LRU to MRU."""
        return list(self._set_for(set_index).items())

    def clear(self) -> None:
        """Remove all entries."""
        for entries in self._data:
            entries.clear()

    def items(self) -> Iterator[Tuple[int, int, V]]:
        """Iterate over (set_index, tag, value) triples."""
        for set_index, entries in enumerate(self._data):
            for tag, value in entries.items():
                yield set_index, tag, value


class SaturatingCounter:
    """A small saturating up/down counter (hardware confidence counter)."""

    __slots__ = ("bits", "max_value", "value")

    def __init__(self, bits: int = 2, initial: int = 0) -> None:
        if bits <= 0:
            raise ValueError("counter width must be positive")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.value = max(0, min(initial, self.max_value))

    def increment(self, amount: int = 1) -> int:
        """Increase the counter, saturating at the maximum."""
        self.value = min(self.max_value, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        """Decrease the counter, saturating at zero."""
        self.value = max(0, self.value - amount)
        return self.value

    def halve(self) -> int:
        """Fast decay: divide the counter by two (used by Gaze's DC)."""
        self.value //= 2
        return self.value

    @property
    def is_saturated(self) -> bool:
        """True when the counter is at its maximum value."""
        return self.value == self.max_value

    def reset(self) -> None:
        """Clear the counter to zero."""
        self.value = 0
