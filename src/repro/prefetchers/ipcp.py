"""Instruction Pointer Classifier-based Prefetching (IPCP).

Pakalapati & Panda, ISCA 2020.  IPCP classifies each load IP into one of
three classes and prefetches accordingly:

* **CS (constant stride)** -- the IP repeatedly strides by the same number of
  blocks; prefetch ``degree`` blocks along the stride.
* **CPLX (complex stride)** -- the IP's stride sequence is irregular but
  predictable through a signature built from recent strides; a Complex
  Stride Prediction Table (CSPT) maps the signature to the next stride with
  a confidence counter.
* **GS (global stream)** -- the IP participates in a dense, region-sized
  stream detected globally; prefetch aggressively ahead of the stream.

This is the L1D version evaluated in the paper (IPCP-L1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
    block_offset_in_region,
    region_number,
)


@dataclass(slots=True)
class _IPEntry:
    """Per-IP tracking state."""

    last_block: int = -1
    last_stride: int = 0
    stride_confidence: int = 0
    signature: int = 0
    stream_valid: bool = False


@dataclass(slots=True)
class _RegionStreamEntry:
    """Region-level dense-stream detector entry."""

    touched: int = 0
    last_offset: int = -1
    ascending: int = 0


class IPCPPrefetcher(Prefetcher):
    """Composite constant-stride / complex-stride / global-stream prefetcher."""

    name = "ipcp"

    def __init__(
        self,
        ip_table_entries: int = 64,
        cspt_entries: int = 128,
        region_stream_entries: int = 8,
        cs_degree: int = 4,
        gs_degree: int = 8,
        region_size: int = 4096,
    ) -> None:
        self.ip_table: LRUTable[int, _IPEntry] = LRUTable(ip_table_entries)
        self.cspt: LRUTable[int, List[int]] = LRUTable(cspt_entries)
        self.region_streams: LRUTable[int, _RegionStreamEntry] = LRUTable(
            region_stream_entries
        )
        self.cs_degree = cs_degree
        self.gs_degree = gs_degree
        self.region_size = region_size
        self.blocks = region_size // 64

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        block = block_number(address)
        region = region_number(address, self.region_size)
        offset = block_offset_in_region(address, self.region_size)

        stream_dense = self._update_region_stream(region, offset)

        key = pc & 0xFFFF
        entry = self.ip_table.get(key)
        if entry is None:
            entry = _IPEntry(last_block=block)
            self.ip_table.put(key, entry)
            return []

        stride = block - entry.last_block
        requests: List[PrefetchRequest] = []

        if stride != 0:
            # --- constant-stride classification -------------------------- #
            if stride == entry.last_stride:
                entry.stride_confidence = min(3, entry.stride_confidence + 1)
            else:
                entry.stride_confidence = max(0, entry.stride_confidence - 1)
                if entry.stride_confidence == 0:
                    entry.last_stride = stride

            # --- complex-stride signature --------------------------------- #
            cspt_entry = self.cspt.get(entry.signature)
            if cspt_entry is not None:
                predicted_stride, confidence = cspt_entry
                if predicted_stride == stride:
                    cspt_entry[1] = min(3, confidence + 1)
                else:
                    cspt_entry[1] = max(0, confidence - 1)
                    if cspt_entry[1] == 0:
                        cspt_entry[0] = stride
            else:
                self.cspt.put(entry.signature, [stride, 1])
            entry.signature = ((entry.signature << 3) ^ (stride & 0x3F)) & 0xFFF

            # --- issue ----------------------------------------------------- #
            if stream_dense:
                for i in range(1, self.gs_degree + 1):
                    requests.append(
                        self.request((block + i) * BLOCK_SIZE, PrefetchHint.L1, pc, "gs")
                    )
            elif entry.stride_confidence >= 2 and entry.last_stride != 0:
                for i in range(1, self.cs_degree + 1):
                    target = block + entry.last_stride * i
                    if target < 0:
                        break
                    requests.append(
                        self.request(target * BLOCK_SIZE, PrefetchHint.L1, pc, "cs")
                    )
            else:
                cspt_entry = self.cspt.get(entry.signature, touch=False)
                if cspt_entry is not None and cspt_entry[1] >= 2:
                    target = block + cspt_entry[0]
                    if target >= 0:
                        requests.append(
                            self.request(
                                target * BLOCK_SIZE, PrefetchHint.L1, pc, "cplx"
                            )
                        )

        entry.last_block = block
        return requests

    def _update_region_stream(self, region: int, offset: int) -> bool:
        entry = self.region_streams.get(region)
        if entry is None:
            entry = _RegionStreamEntry(touched=1, last_offset=offset)
            self.region_streams.put(region, entry)
            return False
        entry.touched += 1
        if entry.last_offset >= 0 and offset == entry.last_offset + 1:
            entry.ascending += 1
        elif offset != entry.last_offset:
            entry.ascending = max(0, entry.ascending - 1)
        entry.last_offset = offset
        return entry.touched >= 4 and entry.ascending >= 3

    def storage_bits(self) -> int:
        ip_table = self.ip_table.capacity * (16 + 7 + 2 + 12 + 1 + 8)
        cspt = self.cspt.capacity * (7 + 2)
        rst = self.region_streams.capacity * (36 + 7 + 6)
        return ip_table + cspt + rst

    def reset(self) -> None:
        self.ip_table.clear()
        self.cspt.clear()
        self.region_streams.clear()
