"""Compiled-kernel wrappers around the flat prefetchers.

When the optional C extension :mod:`repro._kernels` has been built
(``python setup.py build_ext --inplace``), this module exposes twins of
:class:`~repro.prefetchers.arrays.FlatBertiPrefetcher` and
:class:`~repro.prefetchers.arrays.FlatGazePrefetcher` whose ``train_flat``
hot path runs entirely in C.  The Python flat implementations remain the
bit-exact oracle; the C kernels replicate every LRU touch, eviction order
and threshold comparison (all float thresholds are precomputed here with
the exact float comparisons and passed to C as integer tables).

Selection is *opt-in* via the ``kernel="compiled"`` knob on
:func:`repro.sim.simulator.simulate_trace` / the ``--kernel`` CLI flag;
:func:`compiled_twin` returns ``None`` whenever no compiled artifact
exists or the prefetcher/geometry is not supported, so callers always
fall back gracefully to the pure-Python tiers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.arrays import FlatBertiPrefetcher, FlatGazePrefetcher
from repro.prefetchers.pmp import PMPPrefetcher
from repro.prefetchers.temporal import TriangelPrefetcher
from repro.sim.types import BLOCK_SIZE, PrefetchHint, PrefetchRequest

try:  # pragma: no cover - exercised only when the extension is built
    from repro import _kernels
except ImportError:  # plain source checkouts: pure-Python tiers only
    _kernels = None


def compiled_available() -> bool:
    """Whether the :mod:`repro._kernels` extension is importable."""
    return _kernels is not None


class CompiledBertiPrefetcher(FlatBertiPrefetcher):
    """vBerti whose train loop runs in the C kernel (bit-exact)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if _kernels is None:
            raise RuntimeError("repro._kernels extension is not built")
        self._kernel = _kernels.BertiKernel(
            pc_entries=self.pc_entries,
            history_per_pc=self.history_per_pc,
            max_deltas_per_pc=self.max_deltas_per_pc,
            window_blocks=self._window_blocks,
            max_prefetches=self.max_prefetches_per_access,
            l2_occ_thr=self._l2_occ_thr,
            l1_occ_thr=self._l1_occ_thr,
            cand_off=self._cand_off,
            cand_shift=self._cand_shift,
        )
        self.train_flat = self._kernel.train  # type: ignore[method-assign]

    def reset(self) -> None:
        super().reset()
        self._kernel.reset()


class CompiledGazePrefetcher(FlatGazePrefetcher):
    """Gaze whose train/evict/drain paths run in the C kernel (bit-exact).

    Requires ``blocks_per_region <= 64`` (region footprints are single
    64-bit masks in C); :func:`compiled_twin` enforces the limit.

    The introspection counters (``pht_lookups`` … ``promotions``) live on
    the C side while training runs and sync onto the instance attributes
    at the documented points: :meth:`drain` and ``pht_hit_rate`` access —
    read them through either, not mid-stream.
    """

    _META = ("gaze", "gaze-promo")

    def __init__(self, config=None) -> None:
        super().__init__(config)
        if _kernels is None:
            raise RuntimeError("repro._kernels extension is not built")
        cfg = self.config
        if cfg.blocks_per_region > 64:
            raise ValueError(
                "CompiledGazePrefetcher requires blocks_per_region <= 64"
            )
        self._kernel = _kernels.GazeKernel(
            blocks=cfg.blocks_per_region,
            region_size=cfg.region_size,
            filter_entries=cfg.filter_entries,
            accumulation_entries=cfg.accumulation_entries,
            pht_sets=self._pht_sets,
            pht_ways=cfg.pht_ways,
            prefetch_buffer_entries=cfg.prefetch_buffer_entries,
            pb_limit=cfg.pb_issue_per_access,
            promo_start=cfg.promotion_skip + 1,
            promo_count=cfg.promotion_degree,
            head_blocks=cfg.streaming_head_blocks,
            dpct_entries=cfg.dpct_entries,
            dc_bits=cfg.dense_counter_bits,
            enable_streaming=int(cfg.enable_streaming_module),
            enable_pht=int(cfg.enable_pht),
            stride_backup=int(cfg.enable_stride_backup),
        )
        self._ktrain = self._kernel.train

    def train_flat(
        self, pc: int, address: int, cycle: int, latency: int
    ) -> Optional[List[int]]:
        return self._ktrain(pc, address)

    def train(self, pc, address, cycle, result=None) -> List[PrefetchRequest]:
        packed = self._ktrain(pc, address)
        if not packed:
            return []
        req_pc, meta_code = self._kernel.origin()
        meta = self._META[meta_code]
        l1 = PrefetchHint.L1
        l2 = PrefetchHint.L2
        return [
            PrefetchRequest((p >> 1) * BLOCK_SIZE, l1 if p & 1 else l2, req_pc, meta)
            for p in packed
        ]

    def on_cache_eviction(self, block: int) -> None:
        self._kernel.evict(block)

    def drain(self) -> None:
        self._kernel.drain()
        self._sync_counters()

    def _sync_counters(self) -> None:
        """Copy the C-side introspection counters onto the instance."""
        (
            self.pht_lookups,
            self.pht_hits,
            self.pht_updates,
            self.pht_predictions,
            self.streaming_predictions,
            self.backup_activations,
            self.promotions,
        ) = self._kernel.counters()

    @property
    def pht_hit_rate(self) -> float:
        self._sync_counters()
        if not self.pht_lookups:
            return 0.0
        return self.pht_hits / self.pht_lookups

    def reset(self) -> None:
        super().reset()
        self._kernel.reset()


class CompiledPMPPrefetcher(PMPPrefetcher):
    """PMP whose train/merge/predict paths run in the C kernel (bit-exact).

    Requires ``blocks_per_region <= 64`` (region footprints are single
    64-bit masks in C); :func:`compiled_twin` enforces the limit.  The
    integer confidence-threshold tables are precomputed by the Python
    constructor with the exact float comparisons and shipped to C.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if _kernels is None:
            raise RuntimeError("repro._kernels extension is not built")
        if self.blocks > 64:
            raise ValueError(
                "CompiledPMPPrefetcher requires blocks_per_region <= 64"
            )
        self._kernel = _kernels.PMPKernel(
            blocks=self.blocks,
            region_size=self.region_size,
            filter_entries=self.tracker.filter_table.capacity,
            accumulation_entries=self.tracker.accumulation_table.capacity,
            max_confidence=self.max_confidence,
            anchor=int(self.anchor_patterns),
            l1_min=self._l1_min,
            l2_min=self._l2_min,
        )
        self._ktrain = self._kernel.train

    def train_flat(
        self, pc: int, address: int, cycle: int, latency: int
    ) -> Optional[List[int]]:
        return self._ktrain(pc, address)

    def train(self, pc, address, cycle, result=None) -> List[PrefetchRequest]:
        packed = self._ktrain(pc, address)
        if not packed:
            return []
        l1 = PrefetchHint.L1
        l2 = PrefetchHint.L2
        return [
            PrefetchRequest((p >> 1) * BLOCK_SIZE, l1 if p & 1 else l2, pc, "pmp")
            for p in packed
        ]

    def on_cache_eviction(self, block: int) -> None:
        self._kernel.evict(block)

    def reset(self) -> None:
        super().reset()
        self._kernel.reset()


class CompiledTriangelPrefetcher(TriangelPrefetcher):
    """Triangel whose train loop runs in the C kernel (bit-exact).

    Deliberately does **not** expose ``train_flat``: the flat protocol's
    ``(pc, address, cycle, latency)`` signature cannot distinguish
    accesses served by the L1D, which Triangel's training unit must skip
    (it observes the miss stream).  The object :meth:`train` keeps the
    hit-level gate and forwards the surviving accesses to C; the compiled
    *driver* applies the same gate natively.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        if _kernels is None:
            raise RuntimeError("repro._kernels extension is not built")
        self._kernel = _kernels.TriangelKernel(
            training_entries=self.training.capacity,
            sample_entries=self.samples.capacity,
            sample_rate=self.sample_rate,
            markov_sets=self._markov_sets,
            markov_ways=self.markov.ways,
            degree=self.degree,
            distance=self.distance,
            train_threshold=self.train_threshold,
            predict_threshold=self.predict_threshold,
            max_confidence=self.max_confidence,
        )
        self._ktrain = self._kernel.train

    def train(self, pc, address, cycle, result=None) -> List[PrefetchRequest]:
        if result is not None and result.hit_level == "L1D":
            return []  # the training unit observes the L1 miss stream
        packed = self._ktrain(pc, address)
        if not packed:
            return []
        l1 = PrefetchHint.L1
        return [
            PrefetchRequest((p >> 1) * BLOCK_SIZE, l1, pc, "")
            for p in packed
        ]

    def reset(self) -> None:
        super().reset()
        self._kernel.reset()


def compiled_twin(prefetcher):
    """A compiled twin of ``prefetcher``, or ``None`` when unavailable.

    Returns a *fresh* instance configured identically (kernel selection
    happens before any training, so no state transfer is needed).  The
    compiled classes themselves pass through unchanged.
    """
    if _kernels is None:
        return None
    if isinstance(
        prefetcher,
        (
            CompiledBertiPrefetcher,
            CompiledGazePrefetcher,
            CompiledPMPPrefetcher,
            CompiledTriangelPrefetcher,
        ),
    ):
        return prefetcher
    if isinstance(prefetcher, FlatGazePrefetcher):
        if prefetcher.config.blocks_per_region > 64:
            return None
        return CompiledGazePrefetcher(prefetcher.config)
    if isinstance(prefetcher, FlatBertiPrefetcher):
        if (
            prefetcher.history_per_pc > 64
            or prefetcher.max_deltas_per_pc > 64
        ):
            return None
        return CompiledBertiPrefetcher(
            pc_entries=prefetcher.pc_entries,
            history_per_pc=prefetcher.history_per_pc,
            max_deltas_per_pc=prefetcher.max_deltas_per_pc,
            page_window=prefetcher.page_window,
            l1_confidence=prefetcher.l1_confidence,
            l2_confidence=prefetcher.l2_confidence,
            max_prefetches_per_access=prefetcher.max_prefetches_per_access,
            region_size=prefetcher.region_size,
            fetch_latency=prefetcher.fetch_latency,
        )
    if isinstance(prefetcher, PMPPrefetcher):
        if prefetcher.blocks > 64:
            return None
        return CompiledPMPPrefetcher(
            region_size=prefetcher.region_size,
            filter_entries=prefetcher.tracker.filter_table.capacity,
            accumulation_entries=prefetcher.tracker.accumulation_table.capacity,
            max_confidence=prefetcher.max_confidence,
            l1_threshold=prefetcher.l1_threshold,
            l2_threshold=prefetcher.l2_threshold,
            anchor_patterns=prefetcher.anchor_patterns,
        )
    if isinstance(prefetcher, TriangelPrefetcher):
        if prefetcher.degree > 64:
            return None
        return CompiledTriangelPrefetcher(
            training_entries=prefetcher.training.capacity,
            sample_entries=prefetcher.samples.capacity,
            sample_rate=prefetcher.sample_rate,
            markov_sets=prefetcher._markov_sets,
            markov_ways=prefetcher.markov.ways,
            degree=prefetcher.degree,
            distance=prefetcher.distance,
            train_threshold=prefetcher.train_threshold,
            predict_threshold=prefetcher.predict_threshold,
            max_confidence=prefetcher.max_confidence,
        )
    return None
