"""Temporal (address-correlating) prefetchers.

The paper's thesis is that *spatial* patterns carry internal temporal
correlations; these designs sit on the other side of that line — they log
correlated pairs of miss addresses and replay them, with no spatial
generalization at all.  Two designs are provided:

* :class:`GHBMarkovPrefetcher` — the classic global-history-buffer
  address-correlating prefetcher (Nesbit & Smith, HPCA'04, the "G/AC"
  organization): an index table points at the most recent occurrence of
  each block in a circular history buffer, occurrences of the same block
  are linked, and the blocks that followed previous occurrences are
  prefetched.  A first-order Markov predictor with bounded history.

* :class:`TriangelPrefetcher` — a Triangel-style design (Ainsworth &
  Mukhanov, ISCA'24): per-PC training with *sampled* reuse confidence
  decides which streams deserve Markov metadata at all, a set-associative
  Markov table stores one address-pair successor per block with a small
  confidence counter, and predictions chain through the table for
  lookahead.  The on-chip budget is fixed (the real design places its
  metadata in the LLC; modeling that migration is a ROADMAP follow-up),
  so the sampler's job — spending table capacity only on streams whose
  reuse distance fits the table's reach — is what the reproduction
  captures.

Both are ordinary registry prefetchers: single-core jobs, goldens, bench
cases and the engine cache treat them exactly like the spatial designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable, SetAssociativeTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
)


class GHBMarkovPrefetcher(Prefetcher):
    """Global History Buffer prefetcher, address-correlating organization.

    Like the original design, the prefetcher observes the *miss stream*
    (accesses that left the L1), not every load: each observed block is
    appended to a circular global history buffer, an index table maps
    each block to its most recent buffer position, and same-block
    occurrences are chained through link pointers.  On a lookup hit the
    blocks that *followed* up to ``width`` previous occurrences become
    prefetch candidates, newest occurrence first, capped at ``degree``
    distinct targets.  When trained directly without an
    :class:`AccessResult` (unit tests), every access is observed.
    """

    name = "ghb"

    def __init__(
        self,
        ghb_entries: int = 4096,
        index_entries: int = 4096,
        width: int = 2,
        depth: int = 4,
        degree: int = 4,
        distance: int = 16,
    ) -> None:
        if ghb_entries <= 0:
            raise ValueError("ghb_entries must be positive")
        if width <= 0 or depth <= 0 or degree <= 0:
            raise ValueError("width, depth and degree must be positive")
        if distance < 0:
            raise ValueError("distance must be non-negative")
        self.ghb_entries = ghb_entries
        self.width = width
        self.depth = depth
        self.degree = degree
        self.distance = distance
        #: Circular buffer slots: (block, link_position) — ``link_position``
        #: is the *global* position of the previous occurrence (-1 if none).
        self._buffer: List[tuple] = [(-1, -1)] * ghb_entries
        #: Global insertion counter; slot = position % ghb_entries.
        self._head = 0
        self.index: LRUTable[int, int] = LRUTable(index_entries)

    def _entry_at(self, position: int):
        """The buffer entry at a global position (None if overwritten)."""
        if position < 0 or position < self._head - self.ghb_entries:
            return None
        if position >= self._head:
            return None
        return self._buffer[position % self.ghb_entries]

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        if result is not None and result.hit_level == "L1D":
            return []  # correlate the miss stream only, like the original
        block = block_number(address)
        last_position = self.index.get(block)

        requests: List[PrefetchRequest] = []
        if last_position is not None:
            targets: List[int] = []
            seen = {block}
            position = last_position
            for _ in range(self.width):
                entry = self._entry_at(position)
                if entry is None or entry[0] != block:
                    break
                # The ``depth`` entries recorded ``distance`` slots after
                # this occurrence are the blocks that followed it last time
                # around; the skipped slots would arrive too late to beat
                # the demand stream anyway.
                for step in range(1 + self.distance, 1 + self.distance + self.depth):
                    follower = self._entry_at(position + step)
                    if follower is None:
                        break
                    target = follower[0]
                    if target >= 0 and target not in seen:
                        seen.add(target)
                        targets.append(target)
                position = entry[1]
                if position < 0:
                    break
            for target in targets[: self.degree]:
                requests.append(
                    self.request(target * BLOCK_SIZE, PrefetchHint.L1, pc)
                )

        link = last_position if last_position is not None else -1
        self._buffer[self._head % self.ghb_entries] = (block, link)
        self.index.put(block, self._head)
        self._head += 1
        return requests

    def storage_bits(self) -> int:
        # GHB slot: block address (58b) + link pointer (log2 entries, 9-16b
        # rounded to 16).  Index entry: block tag (16b) + pointer (16b).
        return self.ghb_entries * (58 + 16) + self.index.capacity * (16 + 16)

    def reset(self) -> None:
        self._buffer = [(-1, -1)] * self.ghb_entries
        self._head = 0
        self.index.clear()


@dataclass(slots=True)
class _TrainingEntry:
    """Per-PC training-unit state (Triangel's Training Unit)."""

    #: Recent observed blocks, oldest first (bounded by ``distance``): the
    #: Markov pair trained on each observation is (history[0] -> current).
    history: List[int]
    #: Saturating reuse confidence fed by the sampler: high values mean the
    #: PC's addresses recur within the Markov table's reach.
    reuse_conf: int = 0
    #: Accesses observed for this PC (drives the sampling cadence).
    observed: int = 0


class TriangelPrefetcher(Prefetcher):
    """Triangel-style temporal prefetcher with sampled training confidence.

    Structure:

    Like the real design (which observes L2 accesses), training sees the
    L1 *miss stream*; accesses served by the L1 are invisible to it.
    A bit-exact C twin exists
    (:class:`repro.prefetchers.compiled.CompiledTriangelPrefetcher`), so
    under ``kernel="compiled"`` this design trains in the extension and
    runs inside the compiled driver loop.

    * a per-PC **training unit** (:class:`LRUTable`) holding the previous
      block and a saturating reuse-confidence counter;
    * a **sample table** that records a subset of observed blocks (one in
      ``sample_rate`` per PC): re-observing a sampled block before it falls
      out of the table proves the stream's reuse distance is within the
      metadata's reach and raises the PC's confidence, an eviction without
      reuse lowers it — Triangel's key idea of *measuring* temporal reuse
      before spending Markov capacity on a stream;
    * a set-associative **Markov table** mapping block → (the block
      observed ``distance`` misses later, confidence), trained and
      queried only for PCs whose confidence reached ``train_threshold``.
      Training at a distance (rather than on adjacent pairs) is what buys
      timeliness: one table hop predicts a block the demand stream will
      not reach for ``distance`` more misses, so the prefetch has that
      many miss-latencies of slack.  A short chained walk (``degree``
      hops, each jumping another ``distance`` ahead) extends the window.
    """

    name = "triangel"

    def __init__(
        self,
        training_entries: int = 256,
        sample_entries: int = 512,
        sample_rate: int = 8,
        markov_sets: int = 1024,
        markov_ways: int = 4,
        degree: int = 3,
        distance: int = 12,
        train_threshold: int = 2,
        predict_threshold: int = 2,
        max_confidence: int = 3,
    ) -> None:
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if degree <= 0:
            raise ValueError("degree must be positive")
        if distance <= 0:
            raise ValueError("distance must be positive")
        self.training: LRUTable[int, _TrainingEntry] = LRUTable(training_entries)
        #: sampled block → owning PC (reuse check on re-observation).
        self.samples: LRUTable[int, int] = LRUTable(sample_entries)
        self.sample_rate = sample_rate
        #: block → [successor_block, confidence]
        self.markov: SetAssociativeTable[list] = SetAssociativeTable(
            markov_sets, markov_ways
        )
        self._markov_sets = markov_sets
        self.degree = degree
        self.distance = distance
        self.train_threshold = train_threshold
        self.predict_threshold = predict_threshold
        self.max_confidence = max_confidence

    # ------------------------------------------------------------------ #
    # Sampler
    # ------------------------------------------------------------------ #
    def _sample(self, pc: int, block: int, entry: _TrainingEntry) -> None:
        """Update the sampled reuse confidence for ``pc`` on ``block``."""
        owner = self.samples.get(block, touch=False)
        if owner is not None:
            # Reuse within the sample table's reach: the owning stream is
            # temporally predictable at this metadata budget.
            self.samples.pop(block)
            owning = self.training.get(owner, touch=False)
            if owning is not None:
                owning.reuse_conf = min(self.max_confidence, owning.reuse_conf + 1)
            return
        entry.observed += 1
        if entry.observed % self.sample_rate == 0:
            evicted = self.samples.put(block, pc)
            if evicted is not None:
                # The sample aged out unused: its stream's reuse distance
                # exceeds the table's reach — back off that PC.
                evicted_owner = self.training.get(evicted[1], touch=False)
                if evicted_owner is not None and evicted_owner.reuse_conf > 0:
                    evicted_owner.reuse_conf -= 1

    # ------------------------------------------------------------------ #
    # Markov table
    # ------------------------------------------------------------------ #
    def _markov_key(self, block: int):
        return block % self._markov_sets, block // self._markov_sets

    def _markov_update(self, prev_block: int, block: int) -> None:
        set_index, tag = self._markov_key(prev_block)
        entry = self.markov.get(set_index, tag)
        if entry is None:
            self.markov.put(set_index, tag, [block, 1])
            return
        if entry[0] == block:
            entry[1] = min(self.max_confidence, entry[1] + 1)
        else:
            entry[1] -= 1
            if entry[1] <= 0:
                entry[0] = block
                entry[1] = 1

    def _predict(self, block: int, pc: int) -> List[PrefetchRequest]:
        # Each Markov hop jumps ``distance`` misses ahead of the demand
        # stream, so every emitted target has at least ``distance``
        # miss-latencies of slack.
        requests: List[PrefetchRequest] = []
        seen = {block}
        current = block
        for _ in range(self.degree):
            set_index, tag = self._markov_key(current)
            entry = self.markov.get(set_index, tag, touch=False)
            if entry is None or entry[1] < self.predict_threshold or entry[0] in seen:
                break
            target = entry[0]
            seen.add(target)
            requests.append(self.request(target * BLOCK_SIZE, PrefetchHint.L1, pc))
            current = target
        return requests

    # ------------------------------------------------------------------ #
    # Prefetcher interface
    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        if result is not None and result.hit_level == "L1D":
            return []  # the training unit observes the L1 miss stream
        block = block_number(address)
        entry = self.training.get(pc)
        if entry is None:
            self.training.put(pc, _TrainingEntry(history=[block]))
            return []

        self._sample(pc, block, entry)
        trained = entry.reuse_conf >= self.train_threshold
        history = entry.history
        if len(history) >= self.distance:
            # ``history[0]`` was observed ``distance`` misses ago: train
            # the pair (then -> now) so lookups predict at full lead.
            if trained and history[0] != block:
                self._markov_update(history[0], block)
            del history[: len(history) - self.distance + 1]
        history.append(block)
        if not trained:
            return []
        return self._predict(block, pc)

    def storage_bits(self) -> int:
        # Training unit: PC tag (16b) + ``distance`` history blocks (58b
        # each) + confidence (2b) + sample phase (3b).  Sample table:
        # block tag (16b) + PC id (8b).  Markov entry: tag (46b) + target
        # block (58b) + confidence (2b).
        return (
            self.training.capacity * (16 + self.distance * 58 + 2 + 3)
            + self.samples.capacity * (16 + 8)
            + self.markov.capacity * (46 + 58 + 2)
        )

    def reset(self) -> None:
        self.training.clear()
        self.samples.clear()
        self.markov.clear()
