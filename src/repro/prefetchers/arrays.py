"""Array-backed ("flat") prefetcher state and the packed-request protocol.

The object implementations of Gaze (:mod:`repro.core.gaze`) and vBerti
(:mod:`repro.prefetchers.berti`) keep one small object per table entry
(dataclasses inside ``OrderedDict``-backed LRU tables).  After the kernel
refactors of PRs 3 and 5, those per-entry objects are where the remaining
per-access time goes: every train step pays attribute loads/stores on
dataclass entries plus a :class:`~repro.sim.types.PrefetchRequest`
allocation per emitted prefetch.

This module re-hosts the same state machines on *flat* storage:

* :class:`FlatSetAssociativeTable` — a fixed-geometry set-associative table
  whose tags and LRU stamps live in preallocated ``array('q')`` columns and
  whose payload lives in caller-registered parallel columns.  There is no
  per-entry object; a lookup returns a *slot index* into the columns.
* :class:`FlatLRUTable` — the fully-associative companion used for the
  64-entry tables (FT/AT/PB/per-PC).  A Python ``dict`` preserves insertion
  order, so ``key → slot`` in a plain dict *is* the LRU order: a touch is a
  delete + re-insert and the victim is ``next(iter(index))``.  Payload again
  lives in parallel columns indexed by slot.  (A stamp column plus a min
  scan — what the hardware does — costs O(ways) Python work per miss; the
  dict gives the same order O(1) in C.)
* :class:`FlatGazePrefetcher` / :class:`FlatBertiPrefetcher` — bit-exact
  ports of the two hottest prefetchers onto those tables, registered behind
  the existing ``"gaze"`` / ``"vberti"`` names via the registry's
  ``state="flat"`` knob (default ``auto``).

Packed-request protocol
-----------------------

Flat prefetchers expose ``train_flat(pc, address, cycle, latency)``
returning ``None`` (nothing to prefetch) or a list of packed integers::

    packed = (target_block << 1) | (1 if L1-hint else 0)

The batched kernel consumes these directly — no ``PrefetchRequest``
allocation on the hot path.  The inherited ``train()`` entry point is kept
as a thin compatibility wrapper that rebuilds full ``PrefetchRequest``
objects (same addresses, hints, PCs and metadata as the object
implementations), so every scalar consumer — the scalar kernel, the
multi-core driver, composite prefetchers — behaves identically.

Bit-exactness contract
----------------------

Every LRU touch point, eviction order, tie-break and floating-point
comparison of the object implementations is replicated operation for
operation; the golden grid (``tests/test_goldens.py``) and the all-tier
equality suite (``tests/test_flat_state.py``) pin the equivalence for every
registered prefetcher.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import Prefetcher
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
)

#: Packed delta-score layout of :class:`FlatBertiPrefetcher`:
#: ``occurrences << 20 | timely`` (both counters stay far below 2**20 —
#: they are halved at the latest every 64 accesses).
_OCC_ONE = 1 << 20
_TIMELY_MASK = _OCC_ONE - 1

#: Default stamp ceiling of :class:`FlatSetAssociativeTable`; far beyond any
#: realistic run, but finite so wraparound renormalisation is a tested code
#: path rather than dead code.
DEFAULT_STAMP_LIMIT = 1 << 60


def pack_prefetch(block: int, to_l1: bool) -> int:
    """Pack one prefetch target into the flat-kernel integer format."""
    return (block << 1) | (1 if to_l1 else 0)


def unpack_prefetch(packed: int) -> Tuple[int, PrefetchHint]:
    """Inverse of :func:`pack_prefetch`: ``(block, hint)``."""
    return packed >> 1, (PrefetchHint.L1 if packed & 1 else PrefetchHint.L2)


class FlatSetAssociativeTable:
    """Set-associative table over preallocated columns (no per-entry objects).

    Geometry is fixed at construction: ``sets * ways`` slots.  Slot ``s`` of
    set ``i`` lives at column index ``i * ways + s``.  ``tags`` and
    ``stamps`` are ``array('q')`` columns, ``valid`` is a bytearray; payload
    columns are registered with :meth:`add_column` and indexed by the slot
    numbers this class hands out.  A shared ``(set, tag) → slot`` dict
    accelerates lookups; replacement is true LRU via monotonically
    increasing stamps (min-stamp scan over the set's ways on eviction,
    which is why this class suits small associativities — the fully
    associative tables use :class:`FlatLRUTable` instead).

    Replacement order is identical to the ``OrderedDict`` tables in
    :mod:`repro.prefetchers.tables`: every touch assigns a fresh, strictly
    larger stamp, so "minimum stamp" is exactly "least recently used".
    When the stamp clock reaches ``stamp_limit`` the stamps of all valid
    slots are renormalised to ``0..n-1`` in LRU order (wraparound safety;
    exercised by the unit tests with a tiny limit).
    """

    __slots__ = (
        "sets", "ways", "size", "tags", "valid", "stamps",
        "_index", "_clock", "_stamp_limit", "evictions", "columns",
    )

    def __init__(self, sets: int, ways: int,
                 stamp_limit: int = DEFAULT_STAMP_LIMIT) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        self.sets = sets
        self.ways = ways
        self.size = sets * ways
        self.tags = array("q", bytes(8 * self.size))
        self.valid = bytearray(self.size)
        self.stamps = array("q", bytes(8 * self.size))
        self._index: Dict[Tuple[int, int], int] = {}
        self._clock = 0
        self._stamp_limit = stamp_limit
        self.evictions = 0
        self.columns: Dict[str, list] = {}

    # ------------------------------------------------------------------ #
    def add_column(self, name: str, fill=0) -> list:
        """Register (and return) a payload column initialised to ``fill``."""
        column = [fill] * self.size
        self.columns[name] = column
        return column

    def __len__(self) -> int:
        return len(self._index)

    def _tick(self) -> int:
        clock = self._clock
        if clock >= self._stamp_limit:
            self._renormalize()
            clock = self._clock
        self._clock = clock + 1
        return clock

    def _renormalize(self) -> None:
        """Re-stamp all valid slots to ``0..n-1`` preserving LRU order."""
        stamps = self.stamps
        live = sorted(
            (slot for slot in range(self.size) if self.valid[slot]),
            key=stamps.__getitem__,
        )
        for rank, slot in enumerate(live):
            stamps[slot] = rank
        self._clock = len(live)

    # ------------------------------------------------------------------ #
    def lookup(self, set_index: int, tag: int, touch: bool = True) -> int:
        """Slot of ``(set_index, tag)``, or -1; refreshes LRU unless told not to."""
        slot = self._index.get((set_index, tag), -1)
        if slot >= 0 and touch:
            self.stamps[slot] = self._tick()
        return slot

    def touch(self, slot: int) -> None:
        """Mark ``slot`` most recently used."""
        self.stamps[slot] = self._tick()

    def insert(self, set_index: int, tag: int) -> Tuple[int, Optional[int]]:
        """Claim a slot for ``(set_index, tag)``; return ``(slot, evicted_tag)``.

        Payload columns are *not* cleared: on eviction the caller reads the
        victim's payload from the returned slot before overwriting it.
        Inserting an existing tag refreshes its LRU position and returns
        its current slot (payload again untouched — caller overwrites).
        """
        index = self._index
        key = (set_index, tag)
        slot = index.get(key, -1)
        if slot >= 0:
            self.stamps[slot] = self._tick()
            return slot, None
        base = set_index * self.ways
        valid = self.valid
        evicted_tag: Optional[int] = None
        victim = -1
        for slot in range(base, base + self.ways):
            if not valid[slot]:
                victim = slot
                break
        if victim < 0:
            stamps = self.stamps
            victim = base
            best = stamps[base]
            for slot in range(base + 1, base + self.ways):
                if stamps[slot] < best:
                    best = stamps[slot]
                    victim = slot
            evicted_tag = self.tags[victim]
            del index[(set_index, evicted_tag)]
            self.evictions += 1
        self.tags[victim] = tag
        valid[victim] = 1
        index[key] = victim
        self.stamps[victim] = self._tick()
        return victim, evicted_tag

    def remove(self, set_index: int, tag: int) -> int:
        """Invalidate ``(set_index, tag)``; returns its old slot or -1."""
        slot = self._index.pop((set_index, tag), -1)
        if slot >= 0:
            self.valid[slot] = 0
        return slot

    def lru_tag(self, set_index: int) -> Optional[int]:
        """Tag of the set's least recently used valid slot (None when empty)."""
        base = set_index * self.ways
        stamps = self.stamps
        victim = -1
        best = None
        for slot in range(base, base + self.ways):
            if self.valid[slot] and (best is None or stamps[slot] < best):
                best = stamps[slot]
                victim = slot
        return None if victim < 0 else self.tags[victim]

    def clear(self) -> None:
        """Invalidate every slot (payload columns left stale, as on evict)."""
        self._index.clear()
        self.valid[:] = bytearray(self.size)
        self._clock = 0


class FlatLRUTable:
    """Fully-associative LRU table over parallel payload columns.

    ``index`` maps key → slot and its *insertion order is the LRU order*
    (Python dicts preserve insertion; a touch deletes and re-inserts the
    key, the victim is ``next(iter(index))``) — the exact order
    :class:`repro.prefetchers.tables.LRUTable` maintains via
    ``OrderedDict``.  Hot paths bind ``index`` and the columns directly and
    inline the few dict operations; the methods here serve cold paths and
    tests.
    """

    __slots__ = ("capacity", "index", "free", "columns", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self.index: Dict[int, int] = {}
        #: Unused slots, popped on insert; refilled by remove()/clear().
        self.free: List[int] = list(range(capacity - 1, -1, -1))
        self.columns: Dict[str, list] = {}
        self.evictions = 0

    def add_column(self, name: str, fill=0) -> list:
        """Register (and return) a payload column initialised to ``fill``."""
        column = [fill] * self.capacity
        self.columns[name] = column
        return column

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, key: int) -> bool:
        return key in self.index

    def lookup(self, key: int, touch: bool = True) -> int:
        """Slot of ``key`` or -1; refreshes LRU on hit unless ``touch=False``."""
        index = self.index
        slot = index.get(key, -1)
        if slot >= 0 and touch:
            del index[key]
            index[key] = slot
        return slot

    def insert(self, key: int) -> Tuple[int, Optional[int]]:
        """Claim a slot for a *new* ``key``; return ``(slot, evicted_key)``.

        Payload columns are not cleared — on eviction the caller reads the
        victim's payload from the returned slot before overwriting.
        """
        free = self.free
        index = self.index
        if free:
            slot = free.pop()
            index[key] = slot
            return slot, None
        evicted_key = next(iter(index))
        slot = index.pop(evicted_key)
        self.evictions += 1
        index[key] = slot
        return slot, evicted_key

    def remove(self, key: int) -> int:
        """Drop ``key``; returns its slot (recycled onto the free list) or -1."""
        slot = self.index.pop(key, -1)
        if slot >= 0:
            self.free.append(slot)
        return slot

    def keys_lru_to_mru(self) -> List[int]:
        """Keys in LRU → MRU order (dict insertion order)."""
        return list(self.index)

    def clear(self) -> None:
        """Drop every entry and rebuild the free list (both in place, so
        hot-path bindings of ``index``/``free`` stay valid)."""
        self.index.clear()
        free = self.free
        free.clear()
        free.extend(range(self.capacity - 1, -1, -1))


# ===================================================================== #
# vBerti on flat state
# ===================================================================== #
class FlatBertiPrefetcher(Prefetcher):
    """Bit-exact vBerti on a :class:`FlatLRUTable` with packed delta scores.

    Differences from :class:`repro.prefetchers.berti.BertiPrefetcher` are
    purely representational: per-PC state lives in table columns instead of
    ``_PCState`` dataclasses, each delta score is one packed int
    (``occurrences << 20 | timely``) instead of a ``_DeltaScore`` object,
    and ``train_flat`` emits packed prefetch integers.  A per-slot cached
    maximum packed score lets the issue scan exit early when no delta can
    clear the L2 confidence threshold — the skip condition evaluates the
    same float comparison the object implementation would, on the maximal
    score, so the emitted request stream is identical.
    """

    name = "vberti"

    def __init__(
        self,
        pc_entries: int = 64,
        history_per_pc: int = 16,
        max_deltas_per_pc: int = 16,
        page_window: int = 4,
        l1_confidence: float = 0.65,
        l2_confidence: float = 0.35,
        max_prefetches_per_access: int = 4,
        region_size: int = 4096,
        fetch_latency: int = 60,
    ) -> None:
        self.pc_entries = pc_entries
        self.history_per_pc = history_per_pc
        self.max_deltas_per_pc = max_deltas_per_pc
        self.page_window = page_window
        self.l1_confidence = l1_confidence
        self.l2_confidence = l2_confidence
        self.max_prefetches_per_access = max_prefetches_per_access
        self.region_size = region_size
        self.blocks_per_page = region_size // 64
        self.fetch_latency = fetch_latency
        self._window_blocks = page_window * self.blocks_per_page
        self.table = FlatLRUTable(pc_entries)
        self._pc_index = self.table.index
        self._pc_free = self.table.free
        #: (block, cycle) tuples, chronological — same shape as the object
        #: implementation's history (tuple iteration unpacks without
        #: allocating, which parallel lists cannot beat in Python).
        self._hist = self.table.add_column("history")
        self._deltas = self.table.add_column("deltas")
        self._rounds = self.table.add_column("rounds")
        #: Max packed score per slot (occurrences dominate the packing, so
        #: ``maxp >> 20`` is the maximal occurrence count).  Upper bound —
        #: refreshed exactly on decay and weakest-eviction scans.
        self._maxp = self.table.add_column("maxp")
        for slot in range(pc_entries):
            self._hist[slot] = []
            self._deltas[slot] = {}
        # Per-``rounds`` occurrence thresholds: the smallest occurrence
        # count whose clamped confidence ``min(occ/rounds, 1.0)`` passes
        # each threshold, found with the exact float comparisons the object
        # implementation applies per delta.  Confidence is monotone in the
        # occurrence count, so ``occ >= threshold[rounds]`` is equivalent to
        # the per-delta division — the issue scan then runs entirely on
        # ints.  ``rounds`` stays below 64 (it is halved when it reaches
        # 64), and occurrences above ``rounds`` clamp to confidence 1.0, so
        # scanning 0..rounds is exhaustive.
        unreachable = 1 << 60
        self._l2_occ_thr = l2_thr = [unreachable] * 64
        self._l1_occ_thr = l1_thr = [unreachable] * 64
        for r in range(1, 64):
            for occ in range(r + 1):
                conf = occ / r
                if conf > 1.0:
                    conf = 1.0
                if l2_thr[r] == unreachable and conf >= l2_confidence:
                    l2_thr[r] = occ
                if l1_thr[r] == unreachable and conf >= l1_confidence:
                    l1_thr[r] = occ
        # Packed sort keys for issue candidates: ``min(occ, rounds)`` above
        # an offset-biased delta.  The offset strictly exceeds the delta
        # window, so keys order by (clamped confidence, delta) descending —
        # exactly the float tuple sort's order (see train_flat).
        self._cand_off = off = 1 << max(10, (self._window_blocks + 1).bit_length())
        self._cand_shift = off.bit_length()
        self._cand_mask = (1 << self._cand_shift) - 1

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        latency = result.latency if result is not None else self.fetch_latency
        packed = self.train_flat(pc, address, cycle, latency)
        if not packed:
            return []
        l1 = PrefetchHint.L1
        l2 = PrefetchHint.L2
        return [
            PrefetchRequest((p >> 1) * BLOCK_SIZE, l1 if p & 1 else l2, pc, "berti")
            for p in packed
        ]

    def train_flat(
        self, pc: int, address: int, cycle: int, latency: int
    ) -> Optional[List[int]]:
        """One train step; returns packed prefetches or None (see module doc)."""
        block = address >> 6
        key = pc & 0xFFFF
        index = self._pc_index
        slot = index.get(key, -1)
        if slot < 0:
            free = self._pc_free
            if free:
                slot = free.pop()
            else:
                evicted = next(iter(index))
                slot = index.pop(evicted)
                self._hist[slot].clear()
                self._deltas[slot].clear()
                self._rounds[slot] = 0
                self._maxp[slot] = 0
            index[key] = slot
        else:
            del index[key]
            index[key] = slot

        history = self._hist[slot]
        deltas = self._deltas[slot]
        rounds = self._rounds[slot]
        maxp = self._maxp[slot]

        # ---- learn (exact port of BertiPrefetcher._learn_deltas) ----- #
        if history:
            window_blocks = self._window_blocks
            neg_window = -window_blocks
            timely_threshold = cycle - latency
            seen = set()
            seen_add = seen.add
            deltas_get = deltas.get
            max_deltas = self.max_deltas_per_pc
            for past_block, past_cycle in history:
                delta = block - past_block
                if (
                    delta == 0
                    or delta > window_blocks
                    or delta < neg_window
                    or delta in seen
                ):
                    continue
                seen_add(delta)
                packed_score = deltas_get(delta)
                if packed_score is None:
                    if len(deltas) >= max_deltas:
                        # Replace the weakest delta (lowest confidence;
                        # first in insertion order on ties) — and refresh
                        # the cached max while we walk the table anyway.
                        # ``rounds`` is constant across the scan, so the
                        # clamped confidence ``min(occ/rounds, 1.0)`` is
                        # order-isomorphic to ``min(occ, rounds)`` (equal
                        # confidences have equal clamped occurrence counts
                        # and vice versa): the victim from this pure-int
                        # scan is identical, float divisions and all.
                        # Keys are never below 1 (occurrences start at 1),
                        # so the first entry reaching key 1 is the victim
                        # outright — ties break to the earliest insertion,
                        # and nothing later can be smaller.  ``maxp`` is
                        # only an upper bound and is refreshed exactly at
                        # decay, so the scan need not maintain it.
                        if rounds:
                            weakest = None
                            weakest_key = unreachable = 1 << 60
                            for d, s in deltas.items():
                                occ = s >> 20
                                k = occ if occ < rounds else rounds
                                if k < weakest_key:
                                    weakest_key = k
                                    weakest = d
                                    if k <= 1:
                                        break
                        else:
                            weakest = next(iter(deltas))
                        del deltas[weakest]
                    new_score = _OCC_ONE + (past_cycle <= timely_threshold)
                else:
                    new_score = (
                        packed_score + _OCC_ONE + (past_cycle <= timely_threshold)
                    )
                deltas[delta] = new_score
                if new_score > maxp:
                    maxp = new_score
        rounds += 1
        if not rounds & 63:
            rounds >>= 1
            maxp = 0
            for d, p in deltas.items():
                occ = (p >> 20) >> 1
                p = ((occ if occ else 1) << 20) | ((p & _TIMELY_MASK) >> 1)
                deltas[d] = p
                if p > maxp:
                    maxp = p
        self._rounds[slot] = rounds
        self._maxp[slot] = maxp

        history.append((block, cycle))
        if len(history) > self.history_per_pc:
            del history[0]

        # ---- issue (exact port of BertiPrefetcher._issue) ------------ #
        if not rounds:
            return None
        # Early exit: the maximal score cannot clear the L2 threshold — the
        # same test _issue applies to every delta, applied to the best one
        # (via the precomputed occurrence threshold, see __init__).
        max_occ = maxp >> 20
        thr_l2 = self._l2_occ_thr[rounds]
        if max_occ < 2 or max_occ < thr_l2:
            return None
        cand_off = self._cand_off
        cand_shift = self._cand_shift
        candidates: List[int] = []
        cand_append = candidates.append
        for delta, p in deltas.items():
            occurrences = p >> 20
            if occurrences < 2 or occurrences < thr_l2:
                continue
            k = occurrences if occurrences < rounds else rounds
            cand_append((k << cand_shift) | (delta + cand_off))
        if not candidates:
            return None
        candidates.sort(reverse=True)
        out: List[int] = []
        out_append = out.append
        window_blocks = self._window_blocks
        thr_l1 = self._l1_occ_thr[rounds]
        cand_mask = self._cand_mask
        for ck in candidates[: self.max_prefetches_per_access]:
            delta = (ck & cand_mask) - cand_off
            target = block + delta
            if target < 0 or abs(delta) > window_blocks:
                continue
            hint_bit = 0
            p = deltas[delta]
            occurrences = p >> 20
            # ``timely/occ >= 0.5`` is exactly ``2*timely >= occ``: 0.5 is
            # a power of two and the true ratio is at least 1/(2*occ) away
            # from it whenever the integer test disagrees, far outside
            # rounding range.
            if occurrences >= thr_l1 and 2 * (p & _TIMELY_MASK) >= occurrences:
                hint_bit = 1
            out_append((target << 1) | hint_bit)
        return out

    # ------------------------------------------------------------------ #
    def storage_bits(self) -> int:
        # Identical accounting to BertiPrefetcher.storage_bits().
        per_pc = 16 + self.history_per_pc * (7 + 12) + self.max_deltas_per_pc * 16
        return self.pc_entries * per_pc

    def reset(self) -> None:
        self.table.clear()
        for slot in range(self.pc_entries):
            self._hist[slot].clear()
            self._deltas[slot].clear()
            self._rounds[slot] = 0
            self._maxp[slot] = 0


# ===================================================================== #
# Gaze on flat state
# ===================================================================== #
class FlatGazePrefetcher(Prefetcher):
    """Bit-exact Gaze on flat tables with bitmask prefetch-buffer patterns.

    FT/AT live in :class:`FlatLRUTable` columns; the PHT is a
    :class:`FlatSetAssociativeTable` (4-way, stamp LRU); the PB keeps three
    exclusive per-slot bitmasks (TO_L1 / TO_L2 / ISSUED) plus an
    issued-to-L1 mask, so pattern merges and stage-1 application are O(1)
    mask operations and ``pop_requests`` walks set bits in ascending order
    — exactly the order (and state transitions) of
    :class:`repro.core.prefetch_buffer.GazePrefetchBuffer`.  The streaming
    module (DPCT/DC) is reused as-is: it only runs on region activation
    and deactivation.

    Only power-of-two-friendly geometries take the flat path (the registry
    falls back to the object implementation otherwise): ``region_size``
    must be a multiple of 64 so packed block numbers reconstruct the exact
    byte addresses ``address_from_region_offset`` would produce.
    """

    name = "gaze"

    def __init__(self, config=None) -> None:
        from repro.core.gaze import GazeConfig

        self.config = config if config is not None else GazeConfig()
        cfg = self.config
        if cfg.region_size % BLOCK_SIZE:
            raise ValueError(
                "FlatGazePrefetcher requires region_size to be a multiple of "
                f"the {BLOCK_SIZE}-byte block size; got {cfg.region_size}"
            )
        blocks = cfg.blocks_per_region
        self._blocks = blocks
        self._region_size = cfg.region_size
        if cfg.region_size & (cfg.region_size - 1) == 0:
            self._region_shift = cfg.region_size.bit_length() - 1
            self._offset_mask = blocks - 1
        else:
            self._region_shift = None
            self._offset_mask = None
        self._full_mask = (1 << blocks) - 1
        self._enable_streaming = cfg.enable_streaming_module
        self._enable_pht = cfg.enable_pht
        self._stride_backup = cfg.enable_stride_backup
        self._pb_limit = cfg.pb_issue_per_access
        self._promo_steps = tuple(
            range(cfg.promotion_skip + 1, cfg.promotion_skip + cfg.promotion_degree + 1)
        )
        head = min(cfg.streaming_head_blocks, blocks)
        self._head_mask = (1 << head) - 1
        self._tail_mask = self._full_mask ^ self._head_mask

        # Filter table: regions touched once.
        self.filter_table = FlatLRUTable(cfg.filter_entries)
        self._ft_index = self.filter_table.index
        self._ft_free = self.filter_table.free
        self._ft_pc = self.filter_table.add_column("trigger_pc")
        self._ft_off = self.filter_table.add_column("trigger_offset")

        # Accumulation table: actively tracked regions.
        self.accumulation_table = FlatLRUTable(cfg.accumulation_entries)
        self._at_index = self.accumulation_table.index
        self._at_free = self.accumulation_table.free
        self._at_region = self.accumulation_table.add_column("region")
        self._at_pc = self.accumulation_table.add_column("trigger_pc")
        self._at_trig = self.accumulation_table.add_column("trigger_offset")
        self._at_second = self.accumulation_table.add_column("second_offset")
        self._at_foot = self.accumulation_table.add_column("footprint")
        self._at_last = self.accumulation_table.add_column("last_offset", -1)
        self._at_penult = self.accumulation_table.add_column("penultimate_offset", -1)
        self._at_stride = self.accumulation_table.add_column("stride_flag")

        # Pattern history table: 4-way set-associative, stamp LRU.
        if cfg.pht_entries % cfg.pht_ways:
            raise ValueError("PHT entries must be a multiple of the associativity")
        self._pht_sets = cfg.pht_entries // cfg.pht_ways
        self.pht = FlatSetAssociativeTable(self._pht_sets, cfg.pht_ways)
        self._pht_foot = self.pht.add_column("footprint")
        self.pht_lookups = 0
        self.pht_hits = 0
        self.pht_updates = 0

        # Prefetch buffer: per-region pattern bitmasks.
        self.prefetch_buffer = FlatLRUTable(cfg.prefetch_buffer_entries)
        self._pb_index = self.prefetch_buffer.index
        self._pb_free = self.prefetch_buffer.free
        self._pb_l1 = self.prefetch_buffer.add_column("to_l1")
        self._pb_l2 = self.prefetch_buffer.add_column("to_l2")
        self._pb_issued = self.prefetch_buffer.add_column("issued")
        self._pb_issued_l1 = self.prefetch_buffer.add_column("issued_l1")
        self._pb_pending = self.prefetch_buffer.add_column("pending")

        from repro.core.dense_tracker import StreamingModule

        self.streaming = StreamingModule(
            dpct_entries=cfg.dpct_entries, dc_bits=cfg.dense_counter_bits
        )

        # (pc, metadata) of the most recent train_flat() emission, read by
        # the train() compatibility wrapper — each call emits requests from
        # exactly one source path, so one pair per call suffices.
        self._req_pc = 0
        self._req_meta = ""

        # Introspection counters used by the analysis figures/tests.
        self.pht_predictions = 0
        self.streaming_predictions = 0
        self.backup_activations = 0
        self.promotions = 0

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        packed = self.train_flat(pc, address, cycle, 0)
        if not packed:
            return []
        l1 = PrefetchHint.L1
        l2 = PrefetchHint.L2
        req_pc = self._req_pc
        meta = self._req_meta
        return [
            PrefetchRequest((p >> 1) * BLOCK_SIZE, l1 if p & 1 else l2, req_pc, meta)
            for p in packed
        ]

    def train_flat(
        self, pc: int, address: int, cycle: int, latency: int
    ) -> Optional[List[int]]:
        """One train step; returns packed prefetches or None (see module doc)."""
        region_shift = self._region_shift
        if region_shift is not None:
            region = address >> region_shift
            offset = (address >> 6) & self._offset_mask
        else:
            region = address // self._region_size
            offset = (address % self._region_size) >> 6

        at_index = self._at_index
        slot = at_index.get(region, -1)
        if slot >= 0:
            del at_index[region]
            at_index[region] = slot
            if self._at_stride[slot] and self._stride_backup:
                self._promote_tracked(slot, offset)
            self._at_foot[slot] |= 1 << offset
            at_last = self._at_last
            last = at_last[slot]
            if offset != last:
                self._at_penult[slot] = last
                at_last[slot] = offset
            pb_index = self._pb_index
            pslot = pb_index.get(region, -1)
            if pslot < 0:
                return None
            del pb_index[region]
            pb_index[region] = pslot
            if not self._pb_pending[pslot]:
                return None
            self._req_pc = pc
            self._req_meta = "gaze-promo"
            return self._pop_requests(pslot, region)

        ft_index = self._ft_index
        fslot = ft_index.get(region, -1)
        if fslot >= 0:
            del ft_index[region]
            trigger_offset = self._ft_off[fslot]
            if trigger_offset == offset:
                ft_index[region] = fslot
                return None
            self._ft_free.append(fslot)
            return self._activate(region, self._ft_pc[fslot], trigger_offset,
                                  offset, pc)

        # First touch of an unknown region: allocate an FT entry (silent
        # LRU eviction, matching GazeFilterTable.insert).
        free = self._ft_free
        if free:
            fslot = free.pop()
        else:
            evicted = next(iter(ft_index))
            fslot = ft_index.pop(evicted)
        ft_index[region] = fslot
        self._ft_pc[fslot] = pc
        self._ft_off[fslot] = offset
        return None

    # ------------------------------------------------------------------ #
    # Region activation (second access)
    # ------------------------------------------------------------------ #
    def _activate(
        self, region: int, trigger_pc: int, trigger_offset: int,
        second_offset: int, second_pc: int,
    ) -> Optional[List[int]]:
        from repro.core.dense_tracker import StreamingConfidence

        stride_flag = False
        if trigger_offset == 0 and second_offset == 1:
            if self._enable_streaming:
                stride_flag = True
                confidence = self.streaming.confidence(trigger_pc)
                exclude = (1 << trigger_offset) | (1 << second_offset)
                if confidence is StreamingConfidence.HIGH:
                    self._pb_add(region, self._head_mask, self._tail_mask, exclude)
                elif confidence is StreamingConfidence.MODERATE:
                    self._pb_add(region, 0, self._head_mask, exclude)
                if confidence is not StreamingConfidence.NONE:
                    self.streaming_predictions += 1
            elif self._enable_pht:
                stride_flag = not self._pht_predict(
                    region, trigger_offset, second_offset
                )
            else:
                stride_flag = True
        elif self._enable_pht:
            matched = self._pht_predict(region, trigger_offset, second_offset)
            stride_flag = not matched and self._stride_backup
        else:
            stride_flag = self._stride_backup

        at_index = self._at_index
        free = self._at_free
        if free:
            slot = free.pop()
        else:
            evicted = next(iter(at_index))
            slot = at_index.pop(evicted)
            self._learn_slot(slot)
        at_index[region] = slot
        self._at_region[slot] = region
        self._at_pc[slot] = trigger_pc
        self._at_trig[slot] = trigger_offset
        self._at_second[slot] = second_offset
        # record(trigger) then record(second); the offsets always differ.
        self._at_foot[slot] = (1 << trigger_offset) | (1 << second_offset)
        self._at_penult[slot] = trigger_offset
        self._at_last[slot] = second_offset
        self._at_stride[slot] = 1 if stride_flag else 0

        pb_index = self._pb_index
        pslot = pb_index.get(region, -1)
        if pslot < 0:
            return None
        del pb_index[region]
        pb_index[region] = pslot
        if not self._pb_pending[pslot]:
            return None
        self._req_pc = trigger_pc
        self._req_meta = "gaze"
        return self._pop_requests(pslot, region)

    def _pht_predict(
        self, region: int, trigger_offset: int, second_offset: int
    ) -> bool:
        self.pht_lookups += 1
        pht = self.pht
        slot = pht._index.get((trigger_offset % self._pht_sets, second_offset), -1)
        if slot < 0:
            return False
        pht.touch(slot)
        self.pht_hits += 1
        self.pht_predictions += 1
        footprint = self._pht_foot[slot]
        exclude = (1 << trigger_offset) | (1 << second_offset)
        self._pb_add(region, footprint & self._full_mask, 0, exclude)
        return True

    def _pht_learn(
        self, trigger_offset: int, second_offset: int, footprint: int
    ) -> None:
        self.pht_updates += 1
        slot, _evicted = self.pht.insert(
            trigger_offset % self._pht_sets, second_offset
        )
        self._pht_foot[slot] = footprint

    # ------------------------------------------------------------------ #
    # Prefetch buffer (bitmask patterns)
    # ------------------------------------------------------------------ #
    def _pb_slot(self, region: int) -> int:
        """Get-or-create the PB slot of ``region`` (LRU touch / eviction)."""
        pb_index = self._pb_index
        pslot = pb_index.get(region, -1)
        if pslot >= 0:
            del pb_index[region]
            pb_index[region] = pslot
            return pslot
        free = self._pb_free
        if free:
            pslot = free.pop()
        else:
            evicted = next(iter(pb_index))
            pslot = pb_index.pop(evicted)
            self._pb_l1[pslot] = 0
            self._pb_l2[pslot] = 0
            self._pb_issued[pslot] = 0
            self._pb_issued_l1[pslot] = 0
            self._pb_pending[pslot] = 0
        pb_index[region] = pslot
        return pslot

    def _pb_add(
        self, region: int, l1_mask: int, l2_mask: int, exclude: int
    ) -> None:
        """Mask form of GazePrefetchBuffer.add_pattern (L2 merge, then L1)."""
        pslot = self._pb_slot(region)
        m1 = self._pb_l1[pslot]
        m2 = self._pb_l2[pslot]
        issued = self._pb_issued[pslot]
        pending = self._pb_pending[pslot]
        if l2_mask:
            new_l2 = l2_mask & ~exclude & ~(m1 | m2 | issued)
            if new_l2:
                m2 |= new_l2
                pending += new_l2.bit_count()
        if l1_mask:
            el1 = l1_mask & ~exclude & ~issued
            if el1:
                pending += (el1 & ~(m1 | m2)).bit_count()
                m1 |= el1
                m2 &= ~el1
        self._pb_l1[pslot] = m1
        self._pb_l2[pslot] = m2
        self._pb_pending[pslot] = pending

    def _pop_requests(self, pslot: int, region: int) -> Optional[List[int]]:
        """Mask form of GazePrefetchBuffer.pop_requests: ascending offsets."""
        m1 = self._pb_l1[pslot]
        pending_mask = m1 | self._pb_l2[pslot]
        base_block = (region * self._region_size) >> 6
        out: List[int] = []
        out_append = out.append
        taken = 0
        taken_l1 = 0
        limit = self._pb_limit
        count = 0
        while pending_mask and count < limit:
            low = pending_mask & -pending_mask
            pending_mask ^= low
            taken |= low
            if m1 & low:
                taken_l1 |= low
                out_append(((base_block + low.bit_length() - 1) << 1) | 1)
            else:
                out_append((base_block + low.bit_length() - 1) << 1)
            count += 1
        if not count:
            return None
        self._pb_l1[pslot] = m1 & ~taken
        self._pb_l2[pslot] &= ~taken
        self._pb_issued[pslot] |= taken
        self._pb_issued_l1[pslot] = (self._pb_issued_l1[pslot] & ~taken) | taken_l1
        self._pb_pending[pslot] -= count
        return out

    # ------------------------------------------------------------------ #
    # Stage-2 promotion / stride backup
    # ------------------------------------------------------------------ #
    def _promote_tracked(self, slot: int, offset: int) -> None:
        last = self._at_last[slot]
        penult = self._at_penult[slot]
        if last < 0 or penult < 0 or offset == last:
            return
        stride = last - penult
        if stride != offset - last or stride == 0:
            return
        blocks = self._blocks
        mask = 0
        for step in self._promo_steps:
            target = offset + stride * step
            if 0 <= target < blocks:
                mask |= 1 << target
        if not mask:
            return
        pslot = self._pb_slot(self._at_region[slot])
        # promote(): skip offsets whose last issue was to the L1; everything
        # else upgrades to TO_L1 (clearing ISSUED), counting toward pending
        # when the previous state was NONE or ISSUED.
        cand = mask & ~self._pb_issued_l1[pslot]
        if not cand:
            return
        m1 = self._pb_l1[pslot]
        m2 = self._pb_l2[pslot]
        self._pb_pending[pslot] += (cand & ~(m1 | m2)).bit_count()
        self._pb_l1[pslot] = m1 | cand
        self._pb_l2[pslot] = m2 & ~cand
        self._pb_issued[pslot] &= ~cand
        self.promotions += 1
        if (self._at_foot[slot] & self._full_mask) != self._full_mask:
            self.backup_activations += 1

    # ------------------------------------------------------------------ #
    # Learning / deactivation
    # ------------------------------------------------------------------ #
    def _learn_slot(self, slot: int) -> None:
        trigger_offset = self._at_trig[slot]
        second_offset = self._at_second[slot]
        if trigger_offset == 0 and second_offset == 1 and self._enable_streaming:
            footprint = self._at_foot[slot] & self._full_mask
            self.streaming.learn(
                self._at_pc[slot], fully_dense=footprint == self._full_mask
            )
            return
        if self._enable_pht:
            self._pht_learn(trigger_offset, second_offset, self._at_foot[slot])

    def on_cache_eviction(self, block: int) -> None:
        """Deactivate the block's region when one of its lines leaves the L1D."""
        region_shift = self._region_shift
        if region_shift is not None:
            region = block >> (region_shift - 6)
        else:
            region = (block << 6) // self._region_size
        slot = self._at_index.pop(region, -1)
        if slot >= 0:
            self._learn_slot(slot)
            self._at_free.append(slot)

    def drain(self) -> None:
        """Deactivate all tracked regions (learns their footprints)."""
        for region in list(self._at_index):
            slot = self._at_index.pop(region)
            self._learn_slot(slot)
            self._at_free.append(slot)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def pht_hit_rate(self) -> float:
        """Fraction of PHT lookups that found a strictly-matching pattern."""
        if not self.pht_lookups:
            return 0.0
        return self.pht_hits / self.pht_lookups

    def storage_bits(self) -> int:
        """Identical accounting to GazePrefetcher.storage_bits (Table I)."""
        cfg = self.config
        blocks = cfg.blocks_per_region
        ft = cfg.filter_entries * (36 + 3 + 12 + 6)
        at = cfg.accumulation_entries * (36 + 3 + 12 + 1 + 1 + 4 * 6 + blocks)
        pht = cfg.pht_entries * (6 + 2 + blocks)
        streaming = self.streaming.storage_bits()
        pb = cfg.prefetch_buffer_entries * (36 + 3 + blocks * 2)
        return ft + at + pht + streaming + pb

    def reset(self) -> None:
        """Clear all internal state."""
        self.filter_table.clear()
        self.accumulation_table.clear()
        self.prefetch_buffer.clear()
        for column in self.prefetch_buffer.columns.values():
            for i in range(len(column)):
                column[i] = 0
        self.pht.clear()
        self.streaming.reset()
        self.pht_lookups = 0
        self.pht_hits = 0
        self.pht_updates = 0
        self.pht_predictions = 0
        self.streaming_predictions = 0
        self.backup_activations = 0
        self.promotions = 0
