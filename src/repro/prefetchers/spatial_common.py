"""Structures shared by all spatial-pattern-based prefetchers.

Spatial prefetchers (SMS, Bingo, DSPatch, PMP and Gaze) share a common
front end:

* a **Filter Table (FT)** holds regions that have been touched exactly once,
  so that one-bit footprints never pollute the pattern history;
* an **Accumulation Table (AT)** tracks currently active regions and
  accumulates their footprint bit vectors;
* when a region is *deactivated* (its AT entry is evicted by LRU), the
  accumulated footprint is handed to the prefetcher for learning.

:class:`RegionTracker` implements that front end once, parameterised by the
region size and the FT/AT capacities, and reports three kinds of events to
the owning prefetcher:

* ``TriggerEvent`` -- first access to an untracked region;
* ``ActivationEvent`` -- second (different-block) access, i.e. the moment a
  region moves from the FT to the AT.  This carries the trigger offset, the
  second offset and the trigger PC -- everything Gaze's pattern
  characterization needs;
* ``DeactivationEvent`` -- the accumulated footprint of a region whose
  tracking ended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    RegionGeometry,
    address_from_region_offset,
    block_offset_in_region,
    blocks_per_region,
    region_number,
)


@dataclass(slots=True)
class TriggerEvent:
    """First access to a region not currently tracked."""

    region: int
    pc: int
    offset: int
    address: int


@dataclass(slots=True)
class ActivationEvent:
    """Second access to a region: it is now tracked by the AT."""

    region: int
    trigger_pc: int
    trigger_offset: int
    second_pc: int
    second_offset: int


@dataclass(slots=True)
class DeactivationEvent:
    """A region's tracking ended; its footprint is ready for learning."""

    region: int
    footprint: int
    trigger_pc: int
    trigger_offset: int
    second_offset: int
    access_count: int


@dataclass(slots=True)
class FilterTableEntry:
    """FT entry: a region seen exactly once so far."""

    region: int
    trigger_pc: int
    trigger_offset: int


@dataclass(slots=True)
class AccumulationEntry:
    """AT entry: an actively tracked region and its accumulated footprint."""

    region: int
    trigger_pc: int
    trigger_offset: int
    second_offset: int
    footprint: int = 0
    access_count: int = 0
    last_offset: int = -1
    penultimate_offset: int = -1
    stride_flag: bool = False

    def record(self, offset: int) -> None:
        """Accumulate one access at ``offset`` into the footprint.

        Repeated accesses to the same block do not disturb the last/penultimate
        offsets (the stride logic works on distinct-block accesses).
        """
        self.footprint |= 1 << offset
        if offset != self.last_offset:
            self.penultimate_offset = self.last_offset
            self.last_offset = offset
        self.access_count += 1

    def last_two_strides(self, new_offset: int) -> Optional[Tuple[int, int]]:
        """Strides formed by (penultimate, last, new) offsets, if available."""
        if self.last_offset < 0 or self.penultimate_offset < 0:
            return None
        return (
            self.last_offset - self.penultimate_offset,
            new_offset - self.last_offset,
        )


class RegionTracker:
    """FT + AT front end shared by spatial prefetchers."""

    __slots__ = (
        "region_size",
        "blocks_per_region",
        "geometry",
        "filter_table",
        "accumulation_table",
        "_split",
        "_at_entries",
        "_ft_entries",
    )

    def __init__(
        self,
        region_size: int = 4096,
        filter_entries: int = 64,
        accumulation_entries: int = 64,
    ) -> None:
        self.region_size = region_size
        self.blocks_per_region = blocks_per_region(region_size)
        self.geometry = RegionGeometry(region_size)
        self.filter_table: LRUTable[int, FilterTableEntry] = LRUTable(filter_entries)
        self.accumulation_table: LRUTable[int, AccumulationEntry] = LRUTable(
            accumulation_entries
        )
        # Hot-path bindings (observe() runs once per demand load of every
        # spatial prefetcher); the dicts are stable objects — ``clear``
        # empties them in place.
        self._split = self.geometry.split
        self._at_entries = self.accumulation_table._entries
        self._ft_entries = self.filter_table._entries

    # ------------------------------------------------------------------ #
    def observe(
        self, pc: int, address: int
    ) -> Tuple[
        Optional[TriggerEvent],
        Optional[ActivationEvent],
        List[DeactivationEvent],
        Optional[AccumulationEntry],
    ]:
        """Feed one demand load into the tracker.

        Returns ``(trigger, activation, deactivations, at_entry)`` where any
        element may be ``None``/empty.  ``at_entry`` is the AT entry of the
        accessed region *after* the access has been recorded (present for
        every access to a tracked region, including the activating one).

        ``deactivations`` is an empty tuple on the paths that cannot
        deactivate anything (no per-access list allocation — this runs on
        every demand load of every spatial prefetcher).
        """
        region, offset = self._split(address)

        at_entries = self._at_entries
        at_entry = at_entries.get(region)
        if at_entry is not None:
            at_entries.move_to_end(region)
            # Inlined AccumulationEntry.record (runs on every tracked access).
            at_entry.footprint |= 1 << offset
            if offset != at_entry.last_offset:
                at_entry.penultimate_offset = at_entry.last_offset
                at_entry.last_offset = offset
            at_entry.access_count += 1
            return None, None, (), at_entry

        ft_entries = self._ft_entries
        ft_entry = ft_entries.get(region)
        if ft_entry is not None:
            ft_entries.move_to_end(region)
            if ft_entry.trigger_offset == offset:
                # Same block touched again: still a one-bit footprint.
                return None, None, (), None
            deactivations: List[DeactivationEvent] = []
            del ft_entries[region]
            new_entry = AccumulationEntry(
                region=region,
                trigger_pc=ft_entry.trigger_pc,
                trigger_offset=ft_entry.trigger_offset,
                second_offset=offset,
            )
            new_entry.record(ft_entry.trigger_offset)
            new_entry.record(offset)
            evicted = self.accumulation_table.put(region, new_entry)
            if evicted is not None:
                deactivations.append(self._deactivate(evicted[1]))
            activation = ActivationEvent(
                region=region,
                trigger_pc=ft_entry.trigger_pc,
                trigger_offset=ft_entry.trigger_offset,
                second_pc=pc,
                second_offset=offset,
            )
            return None, activation, deactivations, new_entry

        # Brand-new region: record it in the FT.
        trigger = TriggerEvent(region=region, pc=pc, offset=offset, address=address)
        self.filter_table.put(
            region,
            FilterTableEntry(region=region, trigger_pc=pc, trigger_offset=offset),
        )
        return trigger, None, (), None

    def _deactivate(self, entry: AccumulationEntry) -> DeactivationEvent:
        return DeactivationEvent(
            region=entry.region,
            footprint=entry.footprint,
            trigger_pc=entry.trigger_pc,
            trigger_offset=entry.trigger_offset,
            second_offset=entry.second_offset,
            access_count=entry.access_count,
        )

    def on_block_eviction(self, block: int) -> Optional[DeactivationEvent]:
        """Deactivate the region containing ``block`` if it is being tracked.

        Called when a cache block is evicted from the L1D: the paper ends a
        region's tracking as soon as one of its cached blocks leaves the
        cache, which keeps pattern learning timely even when few regions are
        active concurrently.
        """
        region = self.geometry.region_of_block(block)
        entry = self.accumulation_table.pop(region)
        if entry is None:
            return None
        return self._deactivate(entry)

    def drain(self) -> List[DeactivationEvent]:
        """Deactivate every tracked region (used at end of simulation/tests)."""
        events = [self._deactivate(entry) for entry in self.accumulation_table.values()]
        self.accumulation_table.clear()
        self.filter_table.clear()
        return events

    def reset(self) -> None:
        """Clear all tracking state."""
        self.filter_table.clear()
        self.accumulation_table.clear()


# ---------------------------------------------------------------------- #
# Footprint helpers
# ---------------------------------------------------------------------- #
def footprint_to_offsets(footprint: int, blocks: int = 64) -> List[int]:
    """Return the list of set block offsets in a footprint bit vector.

    Walks only the set bits (ascending), not every offset position.
    """
    value = footprint & ((1 << blocks) - 1)
    offsets: List[int] = []
    append = offsets.append
    while value:
        low = value & -value
        append(low.bit_length() - 1)
        value ^= low
    return offsets

def offsets_to_footprint(offsets) -> int:
    """Build a footprint bit vector from an iterable of block offsets."""
    footprint = 0
    for offset in offsets:
        footprint |= 1 << offset
    return footprint


def footprint_density(footprint: int, blocks: int = 64) -> float:
    """Fraction of blocks in the region covered by the footprint."""
    if blocks <= 0:
        return 0.0
    return bin(footprint & ((1 << blocks) - 1)).count("1") / blocks


def footprint_population(footprint: int) -> int:
    """Number of blocks set in the footprint."""
    return bin(footprint).count("1")


def rotate_footprint(footprint: int, shift: int, blocks: int = 64) -> int:
    """Rotate a footprint by ``shift`` block positions (anchored patterns).

    SMS-style prefetchers store footprints relative to the trigger offset;
    rotating lets a pattern learned at one trigger offset be replayed at
    another.
    """
    mask = (1 << blocks) - 1
    shift %= blocks
    value = footprint & mask
    return ((value << shift) | (value >> (blocks - shift))) & mask if shift else value


def pattern_to_requests(
    region: int,
    footprint: int,
    region_size: int,
    hint: PrefetchHint = PrefetchHint.L1,
    exclude_offsets=(),
    pc: int = 0,
    limit: Optional[int] = None,
    metadata: str = "",
) -> List[PrefetchRequest]:
    """Convert a footprint bit vector into block-aligned prefetch requests."""
    blocks = blocks_per_region(region_size)
    excluded = set(exclude_offsets)
    requests: List[PrefetchRequest] = []
    for offset in range(blocks):
        if not footprint & (1 << offset):
            continue
        if offset in excluded:
            continue
        requests.append(
            PrefetchRequest(
                address=address_from_region_offset(region, offset, region_size),
                hint=hint,
                origin_pc=pc,
                metadata=metadata,
            )
        )
        if limit is not None and len(requests) >= limit:
            break
    return requests
