"""Pattern Merging Prefetcher (PMP), Jiang et al., MICRO 2022.

PMP pushes context coarsening to the extreme: spatial patterns are
characterised by the trigger *offset* alone, which guarantees that a match
is almost always found after a short warm-up.  To compensate for the loss of
precision, each offset entry *merges* the 32 most recent footprints into a
vector of per-block counters; prediction thresholds then extract the common
core of those patterns: blocks whose counter exceeds 50% of the maximum
confidence are prefetched into the L1D, blocks above 15% into the L2C.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import RegionTracker
from repro.sim.types import (
    AccessResult,
    PrefetchHint,
    PrefetchRequest,
)


class PMPPrefetcher(Prefetcher):
    """Offset-indexed, counter-merged spatial footprint prefetcher."""

    name = "pmp"

    def __init__(
        self,
        region_size: int = 4096,
        filter_entries: int = 64,
        accumulation_entries: int = 64,
        max_confidence: int = 32,
        l1_threshold: float = 0.50,
        l2_threshold: float = 0.15,
        anchor_patterns: bool = True,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.tracker = RegionTracker(
            region_size=region_size,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )
        self.max_confidence = max_confidence
        self.l1_threshold = l1_threshold
        self.l2_threshold = l2_threshold
        self.anchor_patterns = anchor_patterns
        # One counter vector per trigger offset (the OPT in the paper).
        self.offset_pattern_table: List[List[int]] = [
            [0] * self.blocks for _ in range(self.blocks)
        ]
        self.merge_counts: List[int] = [0] * self.blocks
        self._block_mask = (1 << self.blocks) - 1
        self._observe = self.tracker.observe
        # Integer confidence thresholds: ``_l1_min[s]``/``_l2_min[s]`` is the
        # smallest counter value whose confidence ``count / s`` clears the
        # corresponding float threshold (computed here with the exact float
        # comparison the prediction loop used to perform per block, so the
        # all-integer hot loop below reproduces it bit-for-bit; counters
        # never exceed the merge count, so scanning 0..max_confidence is
        # exhaustive).
        unreachable = 1 << 60
        self._l1_min = [unreachable] * (max_confidence + 1)
        self._l2_min = [unreachable] * (max_confidence + 1)
        for scale in range(1, max_confidence + 1):
            for count in range(max_confidence + 1):
                confidence = count / scale
                if (
                    self._l2_min[scale] == unreachable
                    and confidence >= l2_threshold
                ):
                    self._l2_min[scale] = count
                if (
                    self._l1_min[scale] == unreachable
                    and confidence >= l1_threshold
                ):
                    self._l1_min[scale] = count

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        trigger, _activation, deactivations, _entry = self._observe(pc, address)

        for event in deactivations:
            self._merge(event.trigger_offset, event.footprint)

        if trigger is None:
            return []
        return self._predict(trigger.region, trigger.offset, trigger.pc)

    def train_flat(
        self, pc: int, address: int, cycle: int, latency: int
    ) -> Optional[List[int]]:
        """Packed-protocol twin of :meth:`train`.

        Returns ``(block << 1) | to_l1`` ints (or ``None``) instead of
        :class:`PrefetchRequest` objects — PMP emits several requests per
        trigger, so skipping the object construction matters.  Identical
        decisions in identical order.
        """
        trigger, _activation, deactivations, _entry = self._observe(pc, address)

        for event in deactivations:
            self._merge(event.trigger_offset, event.footprint)

        if trigger is None:
            return None
        trigger_offset = trigger.offset
        observed = self.merge_counts[trigger_offset]
        if observed == 0:
            return None
        counters = self.offset_pattern_table[trigger_offset]
        max_confidence = self.max_confidence
        scale = observed if observed < max_confidence else max_confidence
        l1_min = self._l1_min[scale]
        l2_min = self._l2_min[scale]
        blocks = self.blocks
        anchor = self.anchor_patterns
        base = trigger.region * blocks
        packed: List[int] = []
        append = packed.append
        for block, count in enumerate(counters):
            if count < l2_min:
                continue
            target_offset = (block + trigger_offset) % blocks if anchor else block
            if target_offset == trigger_offset:
                continue
            append(
                (base + target_offset) << 1 | (1 if count >= l1_min else 0)
            )
        return packed

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            self._merge(event.trigger_offset, event.footprint)

    def _merge(self, trigger_offset: int, footprint: int) -> None:
        blocks = self.blocks
        max_confidence = self.max_confidence
        block_mask = self._block_mask
        # Inlined rotate_footprint(footprint, -trigger_offset): patterns are
        # stored relative to their trigger.
        pattern = footprint & block_mask
        if self.anchor_patterns and trigger_offset:
            pattern = (
                (pattern << (blocks - trigger_offset))
                | (pattern >> trigger_offset)
            ) & block_mask
        counters = self.offset_pattern_table[trigger_offset]
        merged = self.merge_counts[trigger_offset] + 1
        if merged > max_confidence:
            merged = max_confidence
        self.merge_counts[trigger_offset] = merged
        # Present blocks gain confidence — walk the set bits.
        value = pattern
        while value:
            low = value & -value
            block = low.bit_length() - 1
            count = counters[block] + 1
            counters[block] = count if count < max_confidence else max_confidence
            value ^= low
        if merged >= max_confidence:
            # Saturated: absent blocks decay — walk the clear bits.
            value = ~pattern & block_mask
            while value:
                low = value & -value
                block = low.bit_length() - 1
                if counters[block] > 0:
                    counters[block] -= 1
                value ^= low

    def _predict(
        self, region: int, trigger_offset: int, pc: int
    ) -> List[PrefetchRequest]:
        counters = self.offset_pattern_table[trigger_offset]
        observed = self.merge_counts[trigger_offset]
        if observed == 0:
            return []
        max_confidence = self.max_confidence
        scale = observed if observed < max_confidence else max_confidence
        l1_min = self._l1_min[scale]
        l2_min = self._l2_min[scale]
        requests: List[PrefetchRequest] = []
        blocks = self.blocks
        anchor = self.anchor_patterns
        region_base = region * self.region_size
        l1_hint = PrefetchHint.L1
        l2_hint = PrefetchHint.L2
        append = requests.append
        for block, count in enumerate(counters):
            if count < l2_min:
                continue
            target_offset = (block + trigger_offset) % blocks if anchor else block
            if target_offset == trigger_offset:
                continue
            hint = l1_hint if count >= l1_min else l2_hint
            append(
                PrefetchRequest(
                    region_base + (target_offset << 6), hint, pc, "pmp"
                )
            )
        return requests

    def storage_bits(self) -> int:
        ft = 64 * (36 + 3 + 12 + 6)
        at = 64 * (36 + 3 + 12 + 6 + self.blocks)
        # OPT: one 5-bit counter per block per offset entry (320b per line in
        # the paper's accounting) plus a coarse counter vector table (PPT).
        opt = self.blocks * (self.blocks * 5)
        ppt = 32 * (self.blocks * 5 // 2)
        pb = 32 * (36 + 3 + 2 * self.blocks)
        return ft + at + opt + ppt + pb

    def reset(self) -> None:
        self.tracker.reset()
        self.offset_pattern_table = [[0] * self.blocks for _ in range(self.blocks)]
        self.merge_counts = [0] * self.blocks
