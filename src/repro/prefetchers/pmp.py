"""Pattern Merging Prefetcher (PMP), Jiang et al., MICRO 2022.

PMP pushes context coarsening to the extreme: spatial patterns are
characterised by the trigger *offset* alone, which guarantees that a match
is almost always found after a short warm-up.  To compensate for the loss of
precision, each offset entry *merges* the 32 most recent footprints into a
vector of per-block counters; prediction thresholds then extract the common
core of those patterns: blocks whose counter exceeds 50% of the maximum
confidence are prefetched into the L1D, blocks above 15% into the L2C.
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import RegionTracker, rotate_footprint
from repro.sim.types import (
    AccessResult,
    PrefetchHint,
    PrefetchRequest,
)


class PMPPrefetcher(Prefetcher):
    """Offset-indexed, counter-merged spatial footprint prefetcher."""

    name = "pmp"

    def __init__(
        self,
        region_size: int = 4096,
        filter_entries: int = 64,
        accumulation_entries: int = 64,
        max_confidence: int = 32,
        l1_threshold: float = 0.50,
        l2_threshold: float = 0.15,
        anchor_patterns: bool = True,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.tracker = RegionTracker(
            region_size=region_size,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )
        self.max_confidence = max_confidence
        self.l1_threshold = l1_threshold
        self.l2_threshold = l2_threshold
        self.anchor_patterns = anchor_patterns
        # One counter vector per trigger offset (the OPT in the paper).
        self.offset_pattern_table: List[List[int]] = [
            [0] * self.blocks for _ in range(self.blocks)
        ]
        self.merge_counts: List[int] = [0] * self.blocks

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        trigger, _activation, deactivations, _entry = self.tracker.observe(pc, address)

        for event in deactivations:
            self._merge(event.trigger_offset, event.footprint)

        if trigger is None:
            return []
        return self._predict(trigger.region, trigger.offset, trigger.pc)

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            self._merge(event.trigger_offset, event.footprint)

    def _merge(self, trigger_offset: int, footprint: int) -> None:
        blocks = self.blocks
        max_confidence = self.max_confidence
        pattern = (
            rotate_footprint(footprint, -trigger_offset, blocks)
            if self.anchor_patterns
            else footprint
        )
        counters = self.offset_pattern_table[trigger_offset]
        merged = min(max_confidence, self.merge_counts[trigger_offset] + 1)
        self.merge_counts[trigger_offset] = merged
        if merged >= max_confidence:
            # Saturated: absent blocks decay, so every position is visited.
            for block in range(blocks):
                if pattern & (1 << block):
                    count = counters[block] + 1
                    counters[block] = (
                        count if count < max_confidence else max_confidence
                    )
                elif counters[block] > 0:
                    counters[block] -= 1
        else:
            # Warm-up: only present blocks change — walk the set bits.
            value = pattern & ((1 << blocks) - 1)
            while value:
                low = value & -value
                block = low.bit_length() - 1
                count = counters[block] + 1
                counters[block] = count if count < max_confidence else max_confidence
                value ^= low

    def _predict(
        self, region: int, trigger_offset: int, pc: int
    ) -> List[PrefetchRequest]:
        counters = self.offset_pattern_table[trigger_offset]
        observed = self.merge_counts[trigger_offset]
        if observed == 0:
            return []
        scale = min(observed, self.max_confidence)
        requests: List[PrefetchRequest] = []
        blocks = self.blocks
        anchor = self.anchor_patterns
        l1_threshold = self.l1_threshold
        l2_threshold = self.l2_threshold
        skip_zero = l2_threshold > 0.0
        region_base = region * self.region_size
        l1_hint = PrefetchHint.L1
        l2_hint = PrefetchHint.L2
        append = requests.append
        for block, count in enumerate(counters):
            if not count and skip_zero:
                continue
            confidence = count / scale
            if confidence < l2_threshold:
                continue
            target_offset = (block + trigger_offset) % blocks if anchor else block
            if target_offset == trigger_offset:
                continue
            hint = l1_hint if confidence >= l1_threshold else l2_hint
            append(
                PrefetchRequest(
                    region_base + (target_offset << 6), hint, pc, "pmp"
                )
            )
        return requests

    def storage_bits(self) -> int:
        ft = 64 * (36 + 3 + 12 + 6)
        at = 64 * (36 + 3 + 12 + 6 + self.blocks)
        # OPT: one 5-bit counter per block per offset entry (320b per line in
        # the paper's accounting) plus a coarse counter vector table (PPT).
        opt = self.blocks * (self.blocks * 5)
        ppt = 32 * (self.blocks * 5 // 2)
        pb = 32 * (36 + 3 + 2 * self.blocks)
        return ft + at + opt + ppt + pb

    def reset(self) -> None:
        self.tracker.reset()
        self.offset_pattern_table = [[0] * self.blocks for _ in range(self.blocks)]
        self.merge_counts = [0] * self.blocks
