"""Dual Spatial Pattern Prefetcher (DSPatch), Bera et al., MICRO 2019.

DSPatch characterises spatial patterns per trigger *PC* and keeps two
patterns per PC:

* **CovP** -- the bitwise OR of recently observed footprints (coverage
  biased), and
* **AccP** -- the bitwise AND (accuracy biased).

At prediction time the prefetcher selects between the two based on how much
memory bandwidth headroom is available: plenty of headroom favours CovP,
scarce bandwidth favours AccP.  The bandwidth signal is approximated here by
an exponential moving average of observed demand-miss latency (a saturated
DRAM channel inflates demand latency in our DRAM model, so the signal tracks
the same physical quantity the hardware design measures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import (
    RegionTracker,
    pattern_to_requests,
    rotate_footprint,
)
from repro.prefetchers.tables import LRUTable
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest


@dataclass(slots=True)
class _SignatureEntry:
    """Per-PC dual pattern state."""

    coverage_pattern: int = 0
    accuracy_pattern: int = 0
    trained: int = 0


class DSPatchPrefetcher(Prefetcher):
    """PC-indexed dual-pattern (OR / AND) spatial prefetcher."""

    name = "dspatch"

    def __init__(
        self,
        region_size: int = 2048,
        page_buffer_entries: int = 64,
        signature_entries: int = 256,
        latency_threshold: float = 120.0,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.tracker = RegionTracker(
            region_size=region_size,
            filter_entries=page_buffer_entries,
            accumulation_entries=page_buffer_entries,
        )
        self.signatures: LRUTable[int, _SignatureEntry] = LRUTable(signature_entries)
        self.latency_threshold = latency_threshold
        self._latency_ema = 0.0

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        if result is not None:
            self._latency_ema = 0.95 * self._latency_ema + 0.05 * result.latency

        trigger, _activation, deactivations, _entry = self.tracker.observe(pc, address)

        for event in deactivations:
            self._learn(event.trigger_pc, event.trigger_offset, event.footprint)

        if trigger is None:
            return []

        entry = self.signatures.get(pc & 0xFFF)
        if entry is None or entry.trained == 0:
            return []

        bandwidth_constrained = self._latency_ema > self.latency_threshold
        anchored = (
            entry.accuracy_pattern if bandwidth_constrained else entry.coverage_pattern
        )
        if anchored == 0:
            anchored = entry.coverage_pattern
        if anchored == 0:
            return []

        footprint = rotate_footprint(anchored, trigger.offset, self.blocks)
        return pattern_to_requests(
            region=trigger.region,
            footprint=footprint,
            region_size=self.region_size,
            hint=PrefetchHint.L1,
            exclude_offsets=(trigger.offset,),
            pc=trigger.pc,
            metadata="dspatch-acc" if bandwidth_constrained else "dspatch-cov",
        )

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            self._learn(event.trigger_pc, event.trigger_offset, event.footprint)

    def _learn(self, trigger_pc: int, trigger_offset: int, footprint: int) -> None:
        anchored = rotate_footprint(footprint, -trigger_offset, self.blocks)
        key = trigger_pc & 0xFFF
        entry = self.signatures.get(key)
        if entry is None:
            entry = _SignatureEntry(
                coverage_pattern=anchored, accuracy_pattern=anchored, trained=1
            )
            self.signatures.put(key, entry)
            return
        entry.coverage_pattern |= anchored
        entry.accuracy_pattern &= anchored
        entry.trained += 1
        # Periodically decay the coverage pattern so it does not saturate.
        if entry.trained % 32 == 0:
            entry.coverage_pattern = anchored | entry.accuracy_pattern

    def storage_bits(self) -> int:
        page_buffer = 64 * (36 + 3 + 12 + 5 + self.blocks)
        spt = self.signatures.capacity * (2 * self.blocks + 12 + 4)
        pb = 32 * (36 + 3 + 2 * self.blocks)
        return page_buffer + spt + pb

    def reset(self) -> None:
        self.tracker.reset()
        self.signatures.clear()
        self._latency_ema = 0.0
