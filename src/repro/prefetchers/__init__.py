"""Baseline hardware prefetchers evaluated against Gaze in the paper.

Every prefetcher implements :class:`repro.prefetchers.base.Prefetcher`:
``train(pc, address, cycle, result)`` consumes one demand load and returns a
list of :class:`repro.sim.types.PrefetchRequest`.  The registry maps the
names used throughout the paper's figures ("sms", "bingo", "dspatch",
"pmp", "ipcp", "spp-ppf", "vberti", "ip-stride", "gaze", ...) to factories.
"""

from repro.prefetchers.base import Prefetcher, StatelessPrefetcher
from repro.prefetchers.no_prefetch import NoPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.ip_stride import IPStridePrefetcher
from repro.prefetchers.bop import BestOffsetPrefetcher
from repro.prefetchers.sms import SMSPrefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.dspatch import DSPatchPrefetcher
from repro.prefetchers.pmp import PMPPrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.spp import SPPPrefetcher
from repro.prefetchers.temporal import GHBMarkovPrefetcher, TriangelPrefetcher
from repro.prefetchers.berti import BertiPrefetcher
from repro.prefetchers.multilevel import MultiLevelPrefetcher
from repro.prefetchers.registry import (
    available_prefetchers,
    create_prefetcher,
    register_prefetcher,
)

__all__ = [
    "BertiPrefetcher",
    "BestOffsetPrefetcher",
    "BingoPrefetcher",
    "DSPatchPrefetcher",
    "GHBMarkovPrefetcher",
    "IPCPPrefetcher",
    "IPStridePrefetcher",
    "MultiLevelPrefetcher",
    "NextLinePrefetcher",
    "NoPrefetcher",
    "PMPPrefetcher",
    "Prefetcher",
    "SMSPrefetcher",
    "SPPPrefetcher",
    "StatelessPrefetcher",
    "TriangelPrefetcher",
    "available_prefetchers",
    "create_prefetcher",
    "register_prefetcher",
]
