"""Best-Offset Prefetcher (BOP), Michaud, HPCA 2016.

BOP is a delta prefetcher that learns, over repeated rounds, which single
block offset ``d`` maximizes the number of timely prefetches: for each
demand access to block ``X`` it tests whether ``X - d`` was recently
accessed (via a small recent-requests table); offsets accumulate scores and
the round winner becomes the prefetch offset.  Included as an additional
delta-correlated baseline (the paper discusses BOP in related work).
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
)

#: Candidate offsets from the original paper (subset: small composite numbers).
DEFAULT_OFFSET_CANDIDATES = (
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
)


class BestOffsetPrefetcher(Prefetcher):
    """Round-based best-offset learning with a recent-request table."""

    name = "bop"

    def __init__(
        self,
        candidates=DEFAULT_OFFSET_CANDIDATES,
        round_max: int = 100,
        score_max: int = 31,
        bad_score: int = 1,
        recent_requests: int = 256,
    ) -> None:
        self.candidates = list(candidates)
        self.round_max = round_max
        self.score_max = score_max
        self.bad_score = bad_score
        self.recent: LRUTable[int, bool] = LRUTable(recent_requests)
        self._scores = {offset: 0 for offset in self.candidates}
        self._round_count = 0
        self._candidate_index = 0
        self.best_offset = 1
        self.prefetch_enabled = True

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        block = block_number(address)

        # Learning: test the current candidate offset against this access.
        candidate = self.candidates[self._candidate_index]
        if self.recent.get(block - candidate) is not None:
            self._scores[candidate] += 1
            if self._scores[candidate] >= self.score_max:
                self._finish_round(winner=candidate)
        self._advance_candidate()

        self.recent.put(block, True)

        if not self.prefetch_enabled:
            return []
        target = block + self.best_offset
        return [self.request(target * BLOCK_SIZE, PrefetchHint.L1, pc)]

    # ------------------------------------------------------------------ #
    def _advance_candidate(self) -> None:
        self._candidate_index += 1
        if self._candidate_index >= len(self.candidates):
            self._candidate_index = 0
            self._round_count += 1
            if self._round_count >= self.round_max:
                best = max(self._scores, key=self._scores.get)
                self._finish_round(winner=best)

    def _finish_round(self, winner: int) -> None:
        best_score = self._scores[winner]
        self.best_offset = winner
        self.prefetch_enabled = best_score > self.bad_score
        self._scores = {offset: 0 for offset in self.candidates}
        self._round_count = 0
        self._candidate_index = 0

    def storage_bits(self) -> int:
        # Recent-request table (~256 x 12b hashed tags) + scores (len x 5b).
        return self.recent.capacity * 12 + len(self.candidates) * 5 + 8

    def reset(self) -> None:
        self.recent.clear()
        self._scores = {offset: 0 for offset in self.candidates}
        self._round_count = 0
        self._candidate_index = 0
        self.best_offset = 1
        self.prefetch_enabled = True
