"""Simple next-N-line prefetcher (sanity baseline, not in the paper's set)."""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import StatelessPrefetcher
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
)


class NextLinePrefetcher(StatelessPrefetcher):
    """Prefetches the next ``degree`` sequential cache blocks on every load."""

    name = "next-line"

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        base_block = block_number(address)
        return [
            self.request((base_block + i) * BLOCK_SIZE, PrefetchHint.L1, pc)
            for i in range(1, self.degree + 1)
        ]
