"""Berti / vBerti: an accurate local-delta data prefetcher.

Navarro-Torres et al., MICRO 2022.  Berti works in a per-PC view: for every
load instruction it learns which block *deltas* (relative to the current
access) would have produced *timely* prefetches, by checking, when a block
is demanded, which earlier accesses of the same instruction occurred long
enough ago that a prefetch launched at that point would have completed.
Deltas are scored by how often they are timely; high-confidence deltas are
prefetched into the L1D, medium-confidence deltas into the L2C.

The evaluated variant is **vBerti**: it operates on virtual addresses and is
allowed to cross page boundaries within a window of +-4 pages (the paper
restricts the original +-64-page window because overly large windows select
large-but-inaccurate deltas in multi-core runs).

The key behavioural property the paper leans on -- and which this model
reproduces -- is that Berti has no notion of region activation, so it keeps
re-issuing prefetches for blocks that are already resident in the L1D when
data is re-traversed; those redundant requests occupy prefetch-queue slots
(§IV-B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    BLOCK_SIZE,
    PrefetchHint,
    PrefetchRequest,
    block_number,
)


@dataclass(slots=True)
class _DeltaScore:
    """Score of one candidate delta for one PC."""

    occurrences: int = 0
    timely: int = 0


@dataclass(slots=True)
class _PCState:
    """Per-PC Berti state: recent accesses and delta scores.

    ``history`` holds plain ``(block, cycle)`` tuples — it is walked once
    per access, so the entries stay allocation-light.
    """

    history: List[Tuple[int, int]] = field(default_factory=list)
    deltas: Dict[int, _DeltaScore] = field(default_factory=dict)
    rounds: int = 0

    def confidence(self, delta: int) -> float:
        """Coverage-style confidence: fraction of this PC's recent accesses
        for which ``delta`` pointed at a block the PC really did access."""
        score = self.deltas.get(delta)
        if score is None or self.rounds == 0:
            return 0.0
        return min(1.0, score.occurrences / self.rounds)

    def timeliness(self, delta: int) -> float:
        """Fraction of the delta's occurrences that would have been timely."""
        score = self.deltas.get(delta)
        if score is None or score.occurrences == 0:
            return 0.0
        return score.timely / score.occurrences


class BertiPrefetcher(Prefetcher):
    """Per-PC timely-delta prefetcher (vBerti configuration)."""

    name = "vberti"

    def __init__(
        self,
        pc_entries: int = 64,
        history_per_pc: int = 16,
        max_deltas_per_pc: int = 16,
        page_window: int = 4,
        l1_confidence: float = 0.65,
        l2_confidence: float = 0.35,
        max_prefetches_per_access: int = 4,
        region_size: int = 4096,
        fetch_latency: int = 60,
    ) -> None:
        self.pc_table: LRUTable[int, _PCState] = LRUTable(pc_entries)
        self.history_per_pc = history_per_pc
        self.max_deltas_per_pc = max_deltas_per_pc
        self.page_window = page_window
        self.l1_confidence = l1_confidence
        self.l2_confidence = l2_confidence
        self.max_prefetches_per_access = max_prefetches_per_access
        self.region_size = region_size
        self.blocks_per_page = region_size // 64
        self.fetch_latency = fetch_latency
        # Hot-path constant: the +-page window expressed in blocks.
        self._window_blocks = page_window * self.blocks_per_page
        # Hot-path binding (train() hits the PC table once per load; the
        # dict is a stable object — ``clear`` empties it in place).
        self._pc_entries = self.pc_table._entries

    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        block = block_number(address)
        key = pc & 0xFFFF
        pc_entries = self._pc_entries
        state = pc_entries.get(key)
        if state is None:
            state = _PCState()
            self.pc_table.put(key, state)
        else:
            pc_entries.move_to_end(key)

        latency = result.latency if result is not None else self.fetch_latency
        self._learn_deltas(state, block, cycle, latency)

        history = state.history
        history.append((block, cycle))
        if len(history) > self.history_per_pc:
            history.pop(0)

        return self._issue(state, block, pc)

    def _learn_deltas(
        self, state: _PCState, block: int, cycle: int, latency: int
    ) -> None:
        """Score deltas from past accesses of this PC to the current block.

        This loop runs over the full per-PC history on *every* demand load,
        which makes it vBerti's single hottest function — everything is
        bound to locals and the window/timeliness tests are plain integer
        comparisons (``past_cycle + latency <= cycle`` rewritten as a
        precomputed threshold; ``abs`` unrolled into a two-sided compare).
        """
        window_blocks = self._window_blocks
        neg_window = -window_blocks
        timely_threshold = cycle - latency
        seen_this_access = set()
        seen_add = seen_this_access.add
        deltas = state.deltas
        deltas_get = deltas.get
        rounds = state.rounds
        max_deltas = self.max_deltas_per_pc
        for past_block, past_cycle in state.history:
            delta = block - past_block
            if (
                delta == 0
                or delta > window_blocks
                or delta < neg_window
                or delta in seen_this_access
            ):
                continue
            seen_add(delta)
            score = deltas_get(delta)
            if score is None:
                if len(deltas) >= max_deltas:
                    # Replace the weakest delta (lowest confidence; first in
                    # insertion order on ties, matching min() semantics).
                    weakest = None
                    weakest_conf = None
                    if rounds:
                        for d, s in deltas.items():
                            conf = s.occurrences / rounds
                            if conf > 1.0:
                                conf = 1.0
                            if weakest_conf is None or conf < weakest_conf:
                                weakest_conf = conf
                                weakest = d
                    else:
                        weakest = next(iter(deltas))
                    del deltas[weakest]
                score = _DeltaScore()
                deltas[delta] = score
            score.occurrences += 1
            # Timely if a prefetch launched at the past access would have
            # completed (past_cycle + latency) before the demand arrived.
            if past_cycle <= timely_threshold:
                score.timely += 1
        state.rounds += 1
        if state.rounds % 64 == 0:
            state.rounds //= 2
            for score in state.deltas.values():
                score.occurrences = max(1, score.occurrences // 2)
                score.timely //= 2

    def _issue(self, state: _PCState, block: int, pc: int) -> List[PrefetchRequest]:
        rounds = state.rounds
        if not rounds:
            return []
        candidates: List[Tuple[float, int]] = []
        l2_confidence = self.l2_confidence
        for delta, score in state.deltas.items():
            occurrences = score.occurrences
            if occurrences < 2:
                continue
            confidence = occurrences / rounds
            if confidence > 1.0:
                confidence = 1.0
            if confidence >= l2_confidence:
                candidates.append((confidence, delta))
        if not candidates:
            return []
        candidates.sort(reverse=True)
        requests: List[PrefetchRequest] = []
        window_blocks = self._window_blocks
        deltas = state.deltas
        l1_confidence = self.l1_confidence
        for confidence, delta in candidates[: self.max_prefetches_per_access]:
            target = block + delta
            if target < 0 or abs(delta) > window_blocks:
                continue
            # High-confidence, timely deltas go to the L1D; accurate but
            # late (or lower-confidence) deltas are demoted to the L2C --
            # Berti's level selection by certainty/timeliness.
            hint = PrefetchHint.L2
            if confidence >= l1_confidence:
                score = deltas[delta]
                if score.timely / score.occurrences >= 0.5:
                    hint = PrefetchHint.L1
            requests.append(
                PrefetchRequest(target * BLOCK_SIZE, hint, pc, "berti")
            )
        return requests

    def storage_bits(self) -> int:
        # Per PC: tag 16b + history (16 x (7b delta-capable block offset +
        # 12b cycle)) + delta table (16 x (8b delta + 8b counters)).
        per_pc = 16 + self.history_per_pc * (7 + 12) + self.max_deltas_per_pc * 16
        return self.pc_table.capacity * per_pc

    def reset(self) -> None:
        self.pc_table.clear()
