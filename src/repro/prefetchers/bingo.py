"""Bingo spatial data prefetcher, Bakhshalipour et al., HPCA 2019.

Bingo observes that the short event (``PC + trigger offset``) is carried
inside the long event (``PC + trigger address``), so a single history table
can be associated with both: a lookup first tries to find an *exact* match
on the long event and, failing that, falls back to the most recent pattern
associated with the short event.  Exact matches sustain accuracy, short
matches recover coverage -- the TAGE-like co-association the paper's Fig. 1
labels "Dual Pattern Co-associating".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import (
    RegionTracker,
    pattern_to_requests,
    rotate_footprint,
)
from repro.prefetchers.tables import LRUTable
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest


class BingoPrefetcher(Prefetcher):
    """PC+Address / PC+Offset co-associated spatial footprint prefetcher."""

    name = "bingo"

    def __init__(
        self,
        region_size: int = 2048,
        filter_entries: int = 64,
        accumulation_entries: int = 64,
        pht_entries: int = 16384,
    ) -> None:
        self.region_size = region_size
        self.blocks = region_size // 64
        self.tracker = RegionTracker(
            region_size=region_size,
            filter_entries=filter_entries,
            accumulation_entries=accumulation_entries,
        )
        # Long-event table: (pc, region, offset) -> anchored footprint.
        self.pht_long: LRUTable[Tuple[int, int, int], int] = LRUTable(pht_entries)
        # Short-event index: (pc, offset) -> most recent anchored footprint.
        self.pht_short: LRUTable[Tuple[int, int], int] = LRUTable(pht_entries)
        self.long_hits = 0
        self.short_hits = 0

    # ------------------------------------------------------------------ #
    def _long_event(self, pc: int, region: int, offset: int) -> Tuple[int, int, int]:
        return (pc & 0xFFFF, region, offset)

    def _short_event(self, pc: int, offset: int) -> Tuple[int, int]:
        return (pc & 0xFFFF, offset)

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        trigger, _activation, deactivations, _entry = self.tracker.observe(pc, address)

        for event in deactivations:
            self._learn(event)

        if trigger is None:
            return []

        anchored = self.pht_long.get(
            self._long_event(trigger.pc, trigger.region, trigger.offset)
        )
        if anchored is not None:
            self.long_hits += 1
        else:
            anchored = self.pht_short.get(self._short_event(trigger.pc, trigger.offset))
            if anchored is not None:
                self.short_hits += 1
        if anchored is None:
            return []

        footprint = rotate_footprint(anchored, trigger.offset, self.blocks)
        return pattern_to_requests(
            region=trigger.region,
            footprint=footprint,
            region_size=self.region_size,
            hint=PrefetchHint.L1,
            exclude_offsets=(trigger.offset,),
            pc=trigger.pc,
            metadata="bingo",
        )

    def _learn(self, event) -> None:
        anchored = rotate_footprint(
            event.footprint, -event.trigger_offset, self.blocks
        )
        self.pht_long.put(
            self._long_event(event.trigger_pc, event.region, event.trigger_offset),
            anchored,
        )
        self.pht_short.put(
            self._short_event(event.trigger_pc, event.trigger_offset), anchored
        )

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            self._learn(event)

    def storage_bits(self) -> int:
        ft = 64 * (36 + 3 + 16 + 5)
        at = 64 * (36 + 3 + 16 + 5 + self.blocks)
        # The hardware design stores one table; the long/short association is
        # realised through dual tag comparison, so count the long table only,
        # with wider tags than SMS.
        pht = self.pht_long.capacity * (30 + 2 + self.blocks)
        pb = 32 * (36 + 3 + 2 * self.blocks)
        return ft + at + pht + pb

    def reset(self) -> None:
        self.tracker.reset()
        self.pht_long.clear()
        self.pht_short.clear()
        self.long_hits = 0
        self.short_hits = 0
