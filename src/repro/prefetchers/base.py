"""Prefetcher interface.

A prefetcher sees the stream of demand loads issued by one core at the cache
level where it is deployed (the paper places all evaluated prefetchers at
the L1D unless noted otherwise) and produces prefetch requests tagged with a
target fill level.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest


class Prefetcher(abc.ABC):
    """Abstract base class for all hardware prefetchers."""

    #: Short name used by the registry, reports and figures.
    name: str = "base"

    @abc.abstractmethod
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        """Observe one demand load and return prefetch candidates.

        Args:
            pc: program counter of the load.
            address: byte address accessed.
            cycle: core cycle at which the load issued.
            result: outcome of the access in the hierarchy (hit level,
                latency); prefetchers that only need the address stream may
                ignore it.

        Returns:
            A (possibly empty) list of :class:`PrefetchRequest`.
        """

    def storage_bits(self) -> int:
        """Total metadata storage the design requires, in bits.

        Used by the Table I / Table IV reproduction; defaults to zero for
        stateless designs.
        """
        return 0

    def storage_kib(self) -> float:
        """Storage requirement in KiB."""
        return self.storage_bits() / 8.0 / 1024.0

    def reset(self) -> None:
        """Clear all internal state (used between simulation runs)."""

    def on_cache_eviction(self, block: int) -> None:
        """Notification that ``block`` was evicted from the L1D.

        Spatial-pattern prefetchers use this to deactivate the block's region
        (the paper: a region's tracking ends when one of its cached blocks is
        evicted, or when its tracking entry falls out of the AT).  The default
        implementation ignores the event.
        """

    # Convenience helpers -------------------------------------------------- #
    @staticmethod
    def request(
        address: int,
        hint: PrefetchHint = PrefetchHint.L1,
        pc: int = 0,
        metadata: str = "",
    ) -> PrefetchRequest:
        """Build a :class:`PrefetchRequest` (small readability helper)."""
        return PrefetchRequest(
            address=address, hint=hint, origin_pc=pc, metadata=metadata
        )


class StatelessPrefetcher(Prefetcher):
    """Base class for prefetchers that keep no cross-access state."""

    def reset(self) -> None:  # pragma: no cover - nothing to clear
        return None
