"""Synthetic workload traces standing in for the paper's benchmark suites.

The original evaluation uses 201 instruction traces from SPEC06, SPEC17,
Ligra, PARSEC and CloudSuite (plus GAP and QMM for supplementary results).
Those traces are not redistributable, so this package provides parametric
generators that reproduce the *access-pattern properties* the paper
attributes to each suite:

* dense spatial streaming (SPEC fp: bwaves/lbm/leslie3d-like),
* recurring spatial footprints keyed by their initial accesses (SPEC int /
  fotonik3d-like),
* graph analytics with interleaved frontier streaming and irregular
  neighbour accesses (Ligra / GAP),
* pointer chasing with minimal spatial locality (mcf-like),
* scale-out cloud behaviour: irregular, PC-correlated, weakly
  offset-correlated access (CloudSuite / QMM server),
* multi-phase mixes (PARSEC-like).

`repro.workloads.suites` groups named trace specifications into suites that
mirror the paper's Table III.
"""

from repro.workloads.trace import (
    TraceSource,
    TraceSpec,
    load_trace,
    make_trace,
    save_trace,
    stream_trace,
    trace_statistics,
)
from repro.workloads.formats import (
    FORMATS,
    TraceFile,
    TraceFormatError,
    describe_trace_file,
    file_digest,
)
from repro.workloads.suites import (
    SUITES,
    all_trace_specs,
    suite_names,
    trace_specs_for_suite,
)
from repro.workloads.generators import (
    GENERATORS,
    CloudWorkload,
    GraphWorkload,
    HashProbeWorkload,
    MixedPhaseWorkload,
    PointerChaseWorkload,
    RingBufferWorkload,
    SpatialRecurrenceWorkload,
    StreamingWorkload,
    StridedWorkload,
    TemporalPointerChaseWorkload,
    WorkloadGenerator,
)

__all__ = [
    "CloudWorkload",
    "FORMATS",
    "GENERATORS",
    "GraphWorkload",
    "HashProbeWorkload",
    "MixedPhaseWorkload",
    "PointerChaseWorkload",
    "RingBufferWorkload",
    "SUITES",
    "SpatialRecurrenceWorkload",
    "StreamingWorkload",
    "StridedWorkload",
    "TemporalPointerChaseWorkload",
    "TraceFile",
    "TraceFormatError",
    "TraceSource",
    "TraceSpec",
    "WorkloadGenerator",
    "all_trace_specs",
    "describe_trace_file",
    "file_digest",
    "load_trace",
    "make_trace",
    "save_trace",
    "stream_trace",
    "suite_names",
    "trace_specs_for_suite",
    "trace_statistics",
]
