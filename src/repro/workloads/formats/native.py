"""The versioned native binary trace format.

Layout (all little-endian):

* 16-byte header: ``b"GZTRACE\\0"`` magic, ``u16`` version, ``u16`` flags
  (reserved, must be zero), ``u32`` reserved.
* a stream of fixed-size 21-byte records: ``u64`` pc, ``u64`` byte address,
  ``u8`` access type (0 load, 1 store, 2 prefetch), ``u32`` instruction gap.

The record count is deliberately *not* stored in the header so traces can
be produced by streaming writers that do not know their length up front;
EOF on a record boundary terminates the trace, EOF inside a record raises
:class:`~repro.workloads.formats.base.TraceFormatError`.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, Iterable, Iterator

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads.formats.base import TraceFormat, TraceFormatError

MAGIC = b"GZTRACE\x00"
VERSION = 1

_HEADER = struct.Struct("<8sHHI")
_RECORD = struct.Struct("<QQBI")

_TYPE_TO_CODE = {AccessType.LOAD: 0, AccessType.STORE: 1, AccessType.PREFETCH: 2}
_CODE_TO_TYPE = {code: kind for kind, code in _TYPE_TO_CODE.items()}

_MAX_U64 = (1 << 64) - 1
_MAX_U32 = (1 << 32) - 1


class NativeTraceFormat(TraceFormat):
    """Compact fixed-record binary encoding with a versioned header."""

    # Note: only the unambiguous ``.gzt`` suffix is claimed.  Generic
    # suffixes like ``.trace`` stay unclaimed so files written by earlier
    # versions (always JSON lines, whatever the suffix) keep loading via
    # content sniffing and ``save_trace``'s legacy JSON-lines default.
    name = "native"
    suffixes = (".gzt",)

    def write(self, accesses: Iterable[MemoryAccess], stream: BinaryIO) -> int:
        stream.write(_HEADER.pack(MAGIC, VERSION, 0, 0))
        count = 0
        for access in accesses:
            if not 0 <= access.address <= _MAX_U64 or not 0 <= access.pc <= _MAX_U64:
                raise TraceFormatError(
                    f"record {count}: pc/address out of u64 range "
                    f"(pc={access.pc:#x}, address={access.address:#x})"
                )
            if not 0 <= access.instr_gap <= _MAX_U32:
                raise TraceFormatError(
                    f"record {count}: instr_gap {access.instr_gap} out of u32 range"
                )
            stream.write(
                _RECORD.pack(
                    access.pc,
                    access.address,
                    _TYPE_TO_CODE[access.access_type],
                    access.instr_gap,
                )
            )
            count += 1
        return count

    def read(self, stream: BinaryIO) -> Iterator[MemoryAccess]:
        self._read_header(stream)
        index = 0
        while True:
            chunk = stream.read(_RECORD.size)
            if not chunk:
                return
            if len(chunk) != _RECORD.size:
                raise TraceFormatError(
                    f"truncated native trace: record {index} has "
                    f"{len(chunk)} of {_RECORD.size} bytes"
                )
            pc, address, type_code, gap = _RECORD.unpack(chunk)
            access_type = _CODE_TO_TYPE.get(type_code)
            if access_type is None:
                raise TraceFormatError(
                    f"record {index}: unknown access-type code {type_code}"
                )
            yield MemoryAccess(
                pc=pc, address=address, access_type=access_type, instr_gap=gap
            )
            index += 1

    def describe(self, stream: BinaryIO) -> Dict[str, object]:
        version, flags = self._read_header(stream)
        return {"magic": MAGIC.decode("ascii").rstrip("\x00"),
                "version": version, "flags": flags}

    # ------------------------------------------------------------------ #
    def _read_header(self, stream: BinaryIO):
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(
                f"not a native trace: header has {len(header)} of "
                f"{_HEADER.size} bytes"
            )
        magic, version, flags, _reserved = _HEADER.unpack(header)
        if magic != MAGIC:
            raise TraceFormatError(
                f"not a native trace: bad magic {magic!r} (expected {MAGIC!r})"
            )
        if version != VERSION:
            raise TraceFormatError(
                f"unsupported native trace version {version} "
                f"(this reader supports version {VERSION})"
            )
        if flags != 0:
            raise TraceFormatError(f"unsupported native trace flags {flags:#x}")
        return version, flags
