"""Composable streaming transforms over access iterators.

Every transform consumes an iterator of
:class:`~repro.sim.types.MemoryAccess` and yields a transformed iterator
without materializing the trace, so they chain freely between a streaming
reader and the simulator (or a writer) in O(1) memory::

    accesses = read_trace_stream(path)
    accesses = slice_accesses(accesses, start=1000, stop=51000)
    accesses = remap_addresses(accesses, offset=0x1000000)

:func:`interleave` builds deterministic multi-program mixes out of several
single-program traces — the streaming analogue of concatenating ChampSim
trace segments round-robin.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.sim.types import MemoryAccess
from repro.workloads.formats.base import TraceFormatError


def slice_accesses(
    accesses: Iterable[MemoryAccess],
    start: int = 0,
    stop: int = None,
) -> Iterator[MemoryAccess]:
    """Yield accesses ``start`` (inclusive) through ``stop`` (exclusive).

    Mirrors list slicing with non-negative bounds: ``stop=None`` streams to
    the end of the trace.
    """
    if start < 0 or (stop is not None and stop < start):
        raise TraceFormatError(
            f"invalid slice [{start}:{stop}]: bounds must be non-negative "
            "and ordered"
        )
    return islice(iter(accesses), start, stop)


def cap_instructions(
    accesses: Iterable[MemoryAccess], budget: int
) -> Iterator[MemoryAccess]:
    """Stop the stream once ``budget`` instructions have been emitted.

    Each access accounts for ``instr_gap + 1`` instructions (the non-memory
    gap plus the access itself), matching the simulator's accounting.  The
    access that crosses the budget is still yielded, so a capped trace
    always covers at least ``budget`` instructions (unless it ends first).
    """
    if budget <= 0:
        raise TraceFormatError(f"instruction budget must be positive, got {budget}")
    executed = 0
    for access in accesses:
        yield access
        executed += access.instr_gap + 1
        if executed >= budget:
            return


def remap_addresses(
    accesses: Iterable[MemoryAccess], offset: int = 0, pc_offset: int = 0
) -> Iterator[MemoryAccess]:
    """Shift every address (and optionally every pc) by a fixed offset.

    Useful for aliasing studies and for giving the cores of a homogeneous
    multi-core mix disjoint address spaces.  Raises on remaps that would
    produce a negative address.
    """
    for index, access in enumerate(accesses):
        address = access.address + offset
        pc = access.pc + pc_offset
        if address < 0 or pc < 0:
            raise TraceFormatError(
                f"record {index}: remap by {offset:#x}/{pc_offset:#x} "
                "produces a negative address/pc"
            )
        yield replace(access, address=address, pc=pc)


def interleave(
    traces: Sequence[Iterable[MemoryAccess]], chunk: int = 1
) -> Iterator[MemoryAccess]:
    """Deterministically round-robin ``chunk`` accesses from each trace.

    Traces that end early simply drop out of the rotation; the stream ends
    when every input is exhausted.  With a fixed input order the output is
    fully deterministic, so interleaved traces are cache-key friendly.
    """
    if chunk < 1:
        raise TraceFormatError(f"interleave chunk must be >= 1, got {chunk}")
    iterators = [iter(trace) for trace in traces]
    while iterators:
        surviving = []
        for iterator in iterators:
            taken = list(islice(iterator, chunk))
            if taken:
                yield from taken
            if len(taken) == chunk:
                surviving.append(iterator)
        iterators = surviving
