"""Shared infrastructure for trace file formats.

A :class:`TraceFormat` turns a binary stream into an iterator of
:class:`~repro.sim.types.MemoryAccess` records and back.  Formats never
touch the filesystem themselves: compression and path handling live in
this module so every format is automatically readable and writable
through gzip and xz containers.

All malformed-input paths raise :class:`TraceFormatError` (a
``ValueError``) instead of leaking ``struct.error`` / ``KeyError`` /
``json.JSONDecodeError`` from the codec internals.
"""

from __future__ import annotations

import gzip
import lzma
from abc import ABC, abstractmethod
from pathlib import Path
from typing import BinaryIO, Dict, Iterable, Iterator, Union

from repro.sim.types import MemoryAccess

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A trace file (or trace record) is malformed, truncated or unsupported.

    Raised by every reader on corrupt input and by writers on records a
    format cannot represent, so callers catch one typed error instead of
    bare ``struct.error`` / ``KeyError`` / ``UnicodeDecodeError``.
    """


#: Compression codec names accepted throughout the package.
COMPRESSIONS = ("none", "gzip", "xz")

#: Magic prefixes used to sniff compressed containers.
_GZIP_MAGIC = b"\x1f\x8b"
_XZ_MAGIC = b"\xfd7zXZ\x00"

_SUFFIX_TO_COMPRESSION = {".gz": "gzip", ".gzip": "gzip", ".xz": "xz", ".lzma": "xz"}


def compression_from_path(path: PathLike) -> str:
    """Infer the compression codec from a file suffix (``none`` when plain)."""
    return _SUFFIX_TO_COMPRESSION.get(Path(path).suffix.lower(), "none")


def strip_compression_suffix(path: PathLike) -> Path:
    """Return ``path`` without a trailing ``.gz``/``.xz`` suffix (if any)."""
    path = Path(path)
    if path.suffix.lower() in _SUFFIX_TO_COMPRESSION:
        return path.with_suffix("")
    return path


def sniff_compression(path: PathLike) -> str:
    """Detect the compression codec of an existing file from its magic bytes.

    Falls back to the path suffix when the file cannot be read (e.g. a
    path that does not exist yet).
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(_XZ_MAGIC))
    except OSError:
        return compression_from_path(path)
    if head.startswith(_GZIP_MAGIC):
        return "gzip"
    if head.startswith(_XZ_MAGIC):
        return "xz"
    return "none"


def open_for_read(path: PathLike) -> BinaryIO:
    """Open ``path`` for binary reading, transparently decompressing.

    The codec is sniffed from the file's magic bytes, so a gzip trace named
    ``trace.gzt`` (no ``.gz`` suffix) still opens correctly.
    """
    codec = sniff_compression(path)
    if codec == "gzip":
        return gzip.open(path, "rb")
    if codec == "xz":
        return lzma.open(path, "rb")
    return open(path, "rb")


def open_for_write(path: PathLike, compression: str = "auto") -> BinaryIO:
    """Open ``path`` for binary writing with the requested codec.

    ``"auto"`` picks the codec from the path suffix (``.gz`` → gzip,
    ``.xz`` → xz, otherwise uncompressed).  gzip streams are written with
    ``mtime=0`` so identical traces produce byte-identical files.
    """
    if compression == "auto":
        compression = compression_from_path(path)
    if compression not in COMPRESSIONS:
        raise TraceFormatError(
            f"unknown compression {compression!r}; expected one of {COMPRESSIONS}"
        )
    if compression == "gzip":
        return _ReproducibleGzipWriter(path)
    if compression == "xz":
        return lzma.open(path, "wb")
    return open(path, "wb")


class _ReproducibleGzipWriter(gzip.GzipFile):
    """Gzip writer whose output depends only on the payload.

    Fixes ``mtime`` to zero and keeps the original-filename header field
    empty, so the same trace always compresses to byte-identical files
    regardless of where or when it is written (stable digests).  Owns the
    underlying file handle and closes it with the stream.
    """

    def __init__(self, path: "PathLike") -> None:
        self._raw = open(path, "wb")
        try:
            super().__init__(fileobj=self._raw, mode="wb", mtime=0, filename="")
        except Exception:
            self._raw.close()
            raise

    def close(self) -> None:
        try:
            super().close()
        finally:
            self._raw.close()


class TraceFormat(ABC):
    """One on-disk encoding of a sequence of memory accesses.

    Subclasses are stateless codecs: :meth:`write` serialises an iterable
    of accesses onto an already-open binary stream and :meth:`read` yields
    accesses lazily from one, so arbitrarily long traces encode and decode
    in O(1) memory.
    """

    #: Registry name (``"native"``, ``"champsim"``, ``"jsonl"``).
    name: str = ""
    #: File suffixes (without compression suffixes) that select this format.
    suffixes: tuple = ()

    @abstractmethod
    def write(self, accesses: Iterable[MemoryAccess], stream: BinaryIO) -> int:
        """Serialise ``accesses`` onto ``stream``; returns the record count."""

    @abstractmethod
    def read(self, stream: BinaryIO) -> Iterator[MemoryAccess]:
        """Yield accesses from ``stream`` lazily until EOF.

        Raises :class:`TraceFormatError` on truncated or corrupt input.
        """

    def describe(self, stream: BinaryIO) -> Dict[str, object]:
        """Format-specific header metadata (empty for headerless formats)."""
        return {}
