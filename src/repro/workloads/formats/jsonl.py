"""JSON-lines trace format (the repo's original persistence format).

One JSON object per line with keys ``pc``, ``addr``, ``type`` and ``gap``.
Human-readable and diff-friendly, at roughly 3x the size of the native
binary encoding.  Kept both for backwards compatibility with traces saved
by earlier versions and as the interchange format of last resort.
"""

from __future__ import annotations

import io
import json
from typing import BinaryIO, Iterable, Iterator

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads.formats.base import TraceFormat, TraceFormatError

_TYPE_VALUES = {kind.value for kind in AccessType}


class JsonlTraceFormat(TraceFormat):
    """One ``{"pc":..,"addr":..,"type":..,"gap":..}`` object per line."""

    name = "jsonl"
    suffixes = (".jsonl", ".json")

    def write(self, accesses: Iterable[MemoryAccess], stream: BinaryIO) -> int:
        text = io.TextIOWrapper(stream, encoding="utf-8", newline="\n")
        count = 0
        try:
            for access in accesses:
                if access.address < 0 or access.pc < 0 or access.instr_gap < 0:
                    raise TraceFormatError(
                        f"record {count}: negative pc/address/gap "
                        f"(pc={access.pc}, addr={access.address}, "
                        f"gap={access.instr_gap})"
                    )
                text.write(
                    json.dumps(
                        {
                            "pc": access.pc,
                            "addr": access.address,
                            "type": access.access_type.value,
                            "gap": access.instr_gap,
                        }
                    )
                )
                text.write("\n")
                count += 1
        finally:
            # Flush and detach so closing responsibility stays with the
            # caller-owned binary stream.
            text.flush()
            text.detach()
        return count

    def read(self, stream: BinaryIO) -> Iterator[MemoryAccess]:
        text = io.TextIOWrapper(stream, encoding="utf-8")
        try:
            for line_number, line in enumerate(text, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"line {line_number}: invalid JSON ({exc.msg})"
                    ) from exc
                if not isinstance(record, dict):
                    raise TraceFormatError(
                        f"line {line_number}: expected an object, "
                        f"got {type(record).__name__}"
                    )
                yield self._decode(record, line_number)
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"not a JSON-lines trace: undecodable bytes ({exc.reason})"
            ) from exc
        finally:
            text.detach()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _decode(record: dict, line_number: int) -> MemoryAccess:
        try:
            pc = int(record["pc"])
            address = int(record["addr"])
        except KeyError as exc:
            raise TraceFormatError(
                f"line {line_number}: missing required key {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {line_number}: non-integer pc/addr"
            ) from exc
        type_value = record.get("type", "load")
        if type_value not in _TYPE_VALUES:
            raise TraceFormatError(
                f"line {line_number}: unknown access type {type_value!r} "
                f"(expected one of {sorted(_TYPE_VALUES)})"
            )
        try:
            gap = int(record.get("gap", 0))
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"line {line_number}: non-integer gap"
            ) from exc
        if pc < 0 or address < 0 or gap < 0:
            raise TraceFormatError(
                f"line {line_number}: negative pc/addr/gap"
            )
        return MemoryAccess(
            pc=pc, address=address,
            access_type=AccessType(type_value), instr_gap=gap,
        )
