"""ChampSim-compatible binary trace format.

Encodes each record as a 64-byte ChampSim ``input_instr`` structure (the
layout consumed by the simulator the paper evaluates on)::

    u64 ip
    u8  is_branch
    u8  branch_taken
    u8  destination_registers[2]
    u8  source_registers[4]
    u64 destination_memory[2]
    u64 source_memory[4]

A :class:`~repro.sim.types.MemoryAccess` maps onto one memory instruction
(loads fill ``source_memory[0]``, stores fill ``destination_memory[0]``)
preceded by ``instr_gap`` non-memory filler instructions, so instruction
counts — which drive the core timing model — survive the round trip
exactly.  Reading accepts arbitrary ChampSim traces: an instruction with
several memory operands yields one access per operand (sources before
destinations), with the accumulated non-memory gap attributed to the first.

ChampSim uses operand value 0 to mean "no operand", so an access at byte
address 0 (or a prefetch-typed record) is not representable; the writer
raises :class:`~repro.workloads.formats.base.TraceFormatError` for both
instead of silently corrupting the trace.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads.formats.base import TraceFormat, TraceFormatError

_RECORD = struct.Struct("<QBB2B4B2Q4Q")
RECORD_SIZE = _RECORD.size  # 64 bytes
assert RECORD_SIZE == 64

_MAX_U64 = (1 << 64) - 1

#: Register id stamped on synthetic operands (any non-zero value works).
_REG = 1


class ChampSimTraceFormat(TraceFormat):
    """ChampSim ``input_instr`` records, one instruction per 64 bytes."""

    name = "champsim"
    suffixes = (".champsim", ".champsimtrace")

    def write(self, accesses: Iterable[MemoryAccess], stream: BinaryIO) -> int:
        count = 0
        for access in accesses:
            if access.access_type is AccessType.PREFETCH:
                raise TraceFormatError(
                    f"record {count}: ChampSim traces cannot represent "
                    "prefetch-typed accesses"
                )
            if not 0 < access.address <= _MAX_U64:
                raise TraceFormatError(
                    f"record {count}: address {access.address:#x} is not "
                    "representable (ChampSim reserves operand 0 for "
                    "'no operand')"
                )
            if not 0 <= access.pc <= _MAX_U64:
                raise TraceFormatError(
                    f"record {count}: pc {access.pc:#x} out of u64 range"
                )
            if access.instr_gap < 0:
                raise TraceFormatError(
                    f"record {count}: negative instr_gap {access.instr_gap}"
                )
            for _ in range(access.instr_gap):
                stream.write(self._pack(access.pc, 0, 0))
            if access.access_type is AccessType.STORE:
                stream.write(self._pack(access.pc, 0, access.address))
            else:
                stream.write(self._pack(access.pc, access.address, 0))
            count += 1
        return count

    def read(self, stream: BinaryIO) -> Iterator[MemoryAccess]:
        gap = 0
        index = 0
        while True:
            chunk = stream.read(RECORD_SIZE)
            if not chunk:
                return
            if len(chunk) != RECORD_SIZE:
                raise TraceFormatError(
                    f"truncated ChampSim trace: instruction {index} has "
                    f"{len(chunk)} of {RECORD_SIZE} bytes"
                )
            fields = _RECORD.unpack(chunk)
            ip = fields[0]
            dst_mem = fields[8:10]
            src_mem = fields[10:14]
            emitted = False
            for address in src_mem:
                if address:
                    yield MemoryAccess(
                        pc=ip,
                        address=address,
                        access_type=AccessType.LOAD,
                        instr_gap=0 if emitted else gap,
                    )
                    emitted = True
            for address in dst_mem:
                if address:
                    yield MemoryAccess(
                        pc=ip,
                        address=address,
                        access_type=AccessType.STORE,
                        instr_gap=0 if emitted else gap,
                    )
                    emitted = True
            if emitted:
                gap = 0
            else:
                gap += 1
            index += 1

    # ------------------------------------------------------------------ #
    @staticmethod
    def _pack(ip: int, load_address: int, store_address: int) -> bytes:
        """Pack one instruction with at most one load and one store operand."""
        return _RECORD.pack(
            ip,
            0,  # is_branch
            0,  # branch_taken
            _REG if store_address else 0, 0,  # destination_registers
            _REG if load_address else 0, 0, 0, 0,  # source_registers
            store_address, 0,  # destination_memory
            load_address, 0, 0, 0,  # source_memory
        )
