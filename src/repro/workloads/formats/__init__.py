"""Trace file I/O: formats, compression, streaming readers and transforms.

This package turns the repo's in-memory traces into first-class file
artefacts:

* three formats — the versioned :mod:`native <repro.workloads.formats.native>`
  binary encoding, ChampSim-compatible 64-byte ``input_instr`` records
  (:mod:`repro.workloads.formats.champsim`) and the legacy JSON-lines
  encoding (:mod:`repro.workloads.formats.jsonl`);
* transparent gzip/xz compression on both read (magic-byte sniffing) and
  write (path suffix or explicit codec);
* :class:`TraceFile` — a *re-openable* streaming handle that yields
  :class:`~repro.sim.types.MemoryAccess` records lazily, so arbitrarily
  long traces simulate in O(1) memory and multi-core drivers can replay a
  trace by re-opening it instead of materializing it;
* composable streaming transforms (:func:`slice_accesses`,
  :func:`cap_instructions`, :func:`remap_addresses`, :func:`interleave`).

Every malformed-input path raises the typed :class:`TraceFormatError`.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sim.types import MemoryAccess
from repro.workloads.formats.base import (
    COMPRESSIONS,
    PathLike,
    TraceFormat,
    TraceFormatError,
    compression_from_path,
    open_for_read,
    open_for_write,
    sniff_compression,
    strip_compression_suffix,
)
from repro.workloads.formats.champsim import ChampSimTraceFormat
from repro.workloads.formats.jsonl import JsonlTraceFormat
from repro.workloads.formats.native import MAGIC as NATIVE_MAGIC
from repro.workloads.formats.native import NativeTraceFormat
from repro.workloads.formats.transforms import (
    cap_instructions,
    interleave,
    remap_addresses,
    slice_accesses,
)

#: Registry of available formats, keyed by format name.
FORMATS: Dict[str, TraceFormat] = {
    fmt.name: fmt
    for fmt in (NativeTraceFormat(), ChampSimTraceFormat(), JsonlTraceFormat())
}

#: Format assumed when neither a name, a suffix nor file contents decide.
DEFAULT_FORMAT = "native"


def resolve_format(
    format: Optional[str] = None, path: Optional[PathLike] = None
) -> TraceFormat:
    """Pick a :class:`TraceFormat` from an explicit name or a path suffix.

    Explicit names win; otherwise the path suffix (after stripping any
    ``.gz``/``.xz`` compression suffix) selects the format; otherwise the
    native format is returned.
    """
    if format is not None:
        try:
            return FORMATS[format.lower()]
        except KeyError:
            raise TraceFormatError(
                f"unknown trace format {format!r}; "
                f"known: {', '.join(sorted(FORMATS))}"
            ) from None
    if path is not None:
        suffix = strip_compression_suffix(path).suffix.lower()
        for fmt in FORMATS.values():
            if suffix in fmt.suffixes:
                return fmt
    return FORMATS[DEFAULT_FORMAT]


def sniff_format(path: PathLike) -> TraceFormat:
    """Identify the format of an existing file from suffix, then contents.

    Contents disambiguate suffix-less files: the native magic, then a JSON
    object start, then (for 64-byte-multiple payloads) ChampSim records.
    """
    suffix = strip_compression_suffix(path).suffix.lower()
    for fmt in FORMATS.values():
        if suffix in fmt.suffixes:
            return fmt
    try:
        with open_for_read(path) as stream:
            head = stream.read(len(NATIVE_MAGIC))
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    if head.startswith(NATIVE_MAGIC):
        return FORMATS["native"]
    if head[:1] in (b"{", b"[") or head.lstrip()[:1] == b"{":
        return FORMATS["jsonl"]
    return FORMATS["champsim"]


# --------------------------------------------------------------------------- #
# File-level operations
# --------------------------------------------------------------------------- #
def save_trace_file(
    trace: Iterable[MemoryAccess],
    path: PathLike,
    format: Optional[str] = None,
    compression: str = "auto",
) -> int:
    """Write ``trace`` (any iterable, consumed lazily) to ``path``.

    Returns the number of records written.  The format defaults from the
    path suffix (native otherwise); compression defaults from the suffix
    (``.gz`` → gzip, ``.xz`` → xz).  The write is atomic: records stream
    into a temporary sibling file that replaces ``path`` only on success,
    so a failure mid-stream (e.g. an unrepresentable record) never leaves
    a truncated trace behind that would later load as a valid shorter one.
    """
    if compression == "auto":
        compression = compression_from_path(path)
    fmt = resolve_format(format, path)
    path = Path(path)
    tmp_path = path.with_name(f".tmp-{path.name}")
    try:
        with open_for_write(tmp_path, compression) as stream:
            count = fmt.write(iter(trace), stream)
        os.replace(tmp_path, path)
    except BaseException as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        if isinstance(exc, OSError):
            raise TraceFormatError(
                f"cannot write trace file {path}: {exc}"
            ) from exc
        raise
    return count


def read_trace_stream(
    path: PathLike, format: Optional[str] = None
) -> Iterator[MemoryAccess]:
    """Lazily yield the accesses stored at ``path`` (O(1) memory).

    The stream is closed when the iterator is exhausted or garbage
    collected; use :class:`TraceFile` for a handle that can be re-opened.
    """
    fmt = resolve_format(format, path) if format is not None else sniff_format(path)
    try:
        stream = open_for_read(path)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    try:
        for access in fmt.read(stream):
            yield access
    except (OSError, EOFError) as exc:
        # gzip/xz raise OSError/EOFError on corrupt containers mid-stream.
        raise TraceFormatError(
            f"corrupt compressed trace {path}: {exc}"
        ) from exc
    finally:
        stream.close()


def load_trace_file(
    path: PathLike, format: Optional[str] = None
) -> List[MemoryAccess]:
    """Read the whole trace at ``path`` into a list."""
    return list(read_trace_stream(path, format=format))


def file_digest(path: PathLike) -> str:
    """SHA-256 hex digest of the raw file bytes (compressed form included)."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
    except OSError as exc:
        raise TraceFormatError(f"cannot read trace file {path}: {exc}") from exc
    return digest.hexdigest()


def describe_trace_file(path: PathLike) -> Dict[str, object]:
    """Summarise a trace file: format, compression, size, records, digest.

    Streams through the whole file once to count records and instructions,
    so it also acts as a full-file validity check.
    """
    path = Path(path)
    fmt = sniff_format(path)
    records = 0
    instructions = 0
    with open_for_read(path) as stream:
        header = fmt.describe(stream)
    for access in read_trace_stream(path, format=fmt.name):
        records += 1
        instructions += access.instr_gap + 1
    info: Dict[str, object] = {
        "path": str(path),
        "format": fmt.name,
        "compression": sniff_compression(path),
        "bytes": path.stat().st_size,
        "records": records,
        "instructions": instructions,
        "digest": file_digest(path),
    }
    info.update(header)
    return info


# --------------------------------------------------------------------------- #
# Re-openable streaming handle
# --------------------------------------------------------------------------- #
class TraceFile:
    """A re-openable, lazily-streamed trace file.

    Iterating a :class:`TraceFile` opens a fresh decompressing reader each
    time, so the same handle serves both single-pass streaming simulation
    and replay-based consumers (the multi-core driver re-opens the trace
    instead of holding it in memory).  Transforms attached via
    :meth:`with_transforms` are re-applied on every pass.
    """

    def __init__(
        self,
        path: PathLike,
        format: Optional[str] = None,
        transforms: Tuple = (),
    ) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise TraceFormatError(f"trace file not found: {self.path}")
        self.format = (
            resolve_format(format) if format is not None else sniff_format(self.path)
        )
        self.transforms = tuple(transforms)
        self._digest: Optional[str] = None

    def __iter__(self) -> Iterator[MemoryAccess]:
        accesses: Iterable[MemoryAccess] = read_trace_stream(
            self.path, format=self.format.name
        )
        for transform in self.transforms:
            accesses = transform(accesses)
        return iter(accesses)

    def with_transforms(self, *transforms) -> "TraceFile":
        """A new handle with ``transforms`` appended to the pipeline.

        Each transform is a callable mapping an access iterator to an
        access iterator (see :mod:`repro.workloads.formats.transforms`).
        """
        clone = TraceFile.__new__(TraceFile)
        clone.path = self.path
        clone.format = self.format
        clone.transforms = self.transforms + tuple(transforms)
        clone._digest = self._digest
        return clone

    def decode_batched(self):
        """Decode one full (transformed) pass into parallel arrays.

        Returns a :class:`repro.sim.batch.BatchedTrace` for the batched
        simulation kernel.  Unlike iteration, which streams in O(1) memory,
        the decoded arrays hold the entire trace — callers opt into the
        trade explicitly (``batch="on"`` at the job/simulator level).
        """
        from repro.sim.batch import BatchedTrace

        return BatchedTrace.from_accesses(iter(self))

    def decode_batched_chunks(self, chunk_accesses: Optional[int] = None):
        """Decode one (transformed) pass as bounded-size batched chunks.

        Yields :class:`repro.sim.batch.BatchedTrace` chunks of at most
        ``chunk_accesses`` accesses (default
        :data:`repro.sim.batch.DEFAULT_CHUNK_ACCESSES`) — the batched
        kernel's array layout at O(chunk) memory.  This is the decode the
        simulator's ``batch="auto"`` path performs for file-backed traces;
        exposed here for format tooling and tests.
        """
        from repro.sim.batch import DEFAULT_CHUNK_ACCESSES, ChunkedTraceStream

        stream = ChunkedTraceStream(
            self,
            chunk_accesses=(
                DEFAULT_CHUNK_ACCESSES if chunk_accesses is None else chunk_accesses
            ),
        )
        while True:
            chunk = stream.next_chunk()
            if chunk is None:
                return
            yield chunk

    def digest(self) -> str:
        """Cached SHA-256 digest of the underlying file."""
        if self._digest is None:
            self._digest = file_digest(self.path)
        return self._digest

    def __repr__(self) -> str:
        return (
            f"TraceFile({str(self.path)!r}, format={self.format.name!r}, "
            f"transforms={len(self.transforms)})"
        )


__all__ = [
    "COMPRESSIONS",
    "DEFAULT_FORMAT",
    "FORMATS",
    "TraceFile",
    "TraceFormat",
    "TraceFormatError",
    "cap_instructions",
    "compression_from_path",
    "describe_trace_file",
    "file_digest",
    "interleave",
    "load_trace_file",
    "open_for_read",
    "open_for_write",
    "read_trace_stream",
    "remap_addresses",
    "resolve_format",
    "save_trace_file",
    "slice_accesses",
    "sniff_compression",
    "sniff_format",
    "strip_compression_suffix",
]
