"""Mixed-phase workload generator.

Models the interleaving the paper identifies as the unresolved challenge of
spatial streaming (§III-C and Fig. 5): truly dense streaming regions are
interleaved with regions whose accesses *start* like a stream (blocks 0, 1,
2 ...) but stop after a short prefix -- e.g. a graph frontier that only
occupies the head of its page.  Prefetchers that replay dense footprints
based on the (trigger = 0, second = 1) event alone over-prefetch those
partial regions; Gaze's Dense-PC double check distinguishes the streaming
PC from the frontier PC.

Also used as the PARSEC-like multi-phase workload (facesim/streamcluster):
alternating streaming and irregular program phases.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.types import MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


class MixedPhaseWorkload(WorkloadGenerator):
    """Interleaved dense-streaming and partial-prefix/irregular behaviour.

    Parameters:
        dense_fraction: fraction of region visits that are truly dense
            streams (the rest are partial-prefix or irregular regions).
        prefix_blocks: how many head blocks a partial-prefix region touches.
        irregular_fraction: fraction of *accesses* that are scattered
            irregular loads layered on top of the region visits.
        phase_length: number of region visits per phase before the
            dense/sparse balance flips (models program phases).
    """

    kind = "mixed"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        dense_fraction: float = 0.5,
        prefix_blocks: int = 6,
        irregular_fraction: float = 0.15,
        phase_length: int = 40,
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        self.dense_fraction = dense_fraction
        self.prefix_blocks = max(2, prefix_blocks)
        self.irregular_fraction = irregular_fraction
        self.phase_length = max(1, phase_length)
        self._stream_pc = self.new_pc()
        self._frontier_pc = self.new_pc()
        self._irregular_pc = self.new_pc()
        self._sparse_pc = self.new_pc()
        self._next_stream_region = 0x300000 + (seed % 61) * 0x1000
        self._next_frontier_region = 0x500000 + (seed % 53) * 0x1000

    # ------------------------------------------------------------------ #
    def _dense_region(self) -> List[MemoryAccess]:
        """A fully dense streaming region (trigger 0, second 1, all blocks)."""
        self._next_stream_region += 1
        base = self.region_base(self._next_stream_region)
        return [
            self.access(self._stream_pc, base + offset * 64)
            for offset in range(self.blocks_per_region)
        ]

    def _prefix_region(self) -> List[MemoryAccess]:
        """A region that starts like a stream but stops after a short prefix."""
        self._next_frontier_region += 1
        base = self.region_base(self._next_frontier_region)
        return [
            self.access(self._frontier_pc, base + offset * 64)
            for offset in range(self.prefix_blocks)
        ]

    def _sparse_region(self) -> List[MemoryAccess]:
        """A region with a small scattered footprint (irregular neighbour data)."""
        self._next_frontier_region += 1
        base = self.region_base(self._next_frontier_region)
        count = self.rng.randint(2, 6)
        offsets = sorted(self.rng.sample(range(self.blocks_per_region), k=count))
        return [self.access(self._sparse_pc, base + offset * 64) for offset in offsets]

    def _irregular_access(self) -> MemoryAccess:
        block = 0x700000 + self.rng.randrange(0x200000)
        return self.access(self._irregular_pc, block * 64)

    def _generate(self) -> Iterable[MemoryAccess]:
        visits = 0
        dense_bias = self.dense_fraction
        while True:
            if visits and visits % self.phase_length == 0:
                # Flip the phase balance: streaming-heavy <-> sparse-heavy.
                dense_bias = 1.0 - dense_bias
            roll = self.rng.random()
            if roll < dense_bias:
                region_accesses = self._dense_region()
            elif roll < dense_bias + (1.0 - dense_bias) * 0.6:
                region_accesses = self._prefix_region()
            else:
                region_accesses = self._sparse_region()
            visits += 1
            for access in region_accesses:
                yield access
                if self.rng.random() < self.irregular_fraction:
                    yield self._irregular_access()
