"""Recurring-spatial-footprint workload generator.

Models the SPEC-style behaviour the paper builds its motivation around
(Fig. 2, ``fotonik3d_s``): program phases repeatedly produce the same small
set of spatial footprints in freshly activated regions, and the *order* of
the first accesses inside a footprint is reproduced whenever the footprint
recurs.

The generator creates ``num_classes`` footprint classes.  Classes are
deliberately constructed so that several classes share the same *trigger*
offset while differing in their *second* offset -- the exact ambiguity the
paper uses to show why trigger-offset-only characterization (PMP/Offset)
mispredicts while Gaze's two-access characterization does not.  Each class
is also associated with a small set of PCs so fine-grained PC-based schemes
(SMS/Bingo) can characterise it too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.sim.types import MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


@dataclass
class FootprintClass:
    """One recurring footprint: an ordered list of block offsets and a PC."""

    offsets: List[int]
    pc: int

    @property
    def trigger_offset(self) -> int:
        """Offset of the first access of the pattern."""
        return self.offsets[0]

    @property
    def second_offset(self) -> int:
        """Offset of the second access of the pattern."""
        return self.offsets[1]


class SpatialRecurrenceWorkload(WorkloadGenerator):
    """Regions drawn from a fixed set of recurring footprint classes.

    Parameters:
        num_classes: number of distinct footprint classes.
        classes_per_trigger: how many classes share each trigger offset
            (>= 2 creates the ambiguity that defeats offset-only schemes).
        footprint_blocks: number of blocks per footprint.
        concurrency: number of regions whose accesses are interleaved at any
            time (models out-of-order/loop interleaving and exercises the
            accumulation table).
        noise_fraction: fraction of regions that get a random, unpredictable
            footprint instead of a class footprint.
    """

    kind = "spatial"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_classes: int = 12,
        classes_per_trigger: int = 3,
        footprint_blocks: int = 16,
        concurrency: int = 4,
        noise_fraction: float = 0.10,
        accesses_per_block: int = 1,
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        if footprint_blocks < 2:
            raise ValueError("footprint_blocks must be >= 2")
        if classes_per_trigger < 1:
            raise ValueError("classes_per_trigger must be >= 1")
        self.num_classes = num_classes
        self.classes_per_trigger = classes_per_trigger
        self.footprint_blocks = min(footprint_blocks, self.blocks_per_region)
        self.concurrency = max(1, concurrency)
        self.noise_fraction = noise_fraction
        self.accesses_per_block = accesses_per_block
        self.classes = self._build_classes()
        self._next_region = 0x4000 + (seed % 83) * 0x1000

    # ------------------------------------------------------------------ #
    def _build_classes(self) -> List[FootprintClass]:
        """Construct footprint classes with shared trigger offsets."""
        classes: List[FootprintClass] = []
        num_triggers = max(1, self.num_classes // self.classes_per_trigger)
        trigger_offsets = self.rng.sample(
            range(2, self.blocks_per_region // 2), k=min(num_triggers, 20)
        )
        for index in range(self.num_classes):
            trigger = trigger_offsets[index % len(trigger_offsets)]
            # Second offsets differ per class sharing the trigger.
            second = (trigger + 1 + (index // len(trigger_offsets)) * 3) % (
                self.blocks_per_region
            )
            if second == trigger:
                second = (second + 1) % self.blocks_per_region
            remaining_pool = [
                o
                for o in range(self.blocks_per_region)
                if o not in (trigger, second)
            ]
            body = self.rng.sample(
                remaining_pool, k=min(self.footprint_blocks - 2, len(remaining_pool))
            )
            body.sort()
            offsets = [trigger, second] + body
            classes.append(FootprintClass(offsets=offsets, pc=self.new_pc()))
        return classes

    def _new_region_number(self) -> int:
        self._next_region += 1 + self.rng.randrange(3)
        return self._next_region

    def _region_instance(self) -> List[MemoryAccess]:
        """Materialise one region instance as an ordered access list."""
        region = self._new_region_number()
        base = self.region_base(region)
        if self.rng.random() < self.noise_fraction:
            count = self.rng.randint(2, self.footprint_blocks)
            offsets = self.rng.sample(range(self.blocks_per_region), k=count)
            pc = self.new_pc()
        else:
            cls = self.rng.choice(self.classes)
            offsets = cls.offsets
            pc = cls.pc
        accesses: List[MemoryAccess] = []
        for offset in offsets:
            for element in range(self.accesses_per_block):
                accesses.append(self.access(pc, base + offset * 64 + element * 8))
        return accesses

    def _generate(self) -> Iterable[MemoryAccess]:
        # Maintain ``concurrency`` in-flight regions and interleave their
        # accesses round-robin, mimicking overlapping loop iterations.
        active: List[List[MemoryAccess]] = [
            self._region_instance() for _ in range(self.concurrency)
        ]
        cursors = [0] * self.concurrency
        while True:
            for slot in range(self.concurrency):
                if cursors[slot] >= len(active[slot]):
                    active[slot] = self._region_instance()
                    cursors[slot] = 0
                yield active[slot][cursors[slot]]
                cursors[slot] += 1
