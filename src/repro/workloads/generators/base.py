"""Base class for synthetic workload generators."""

from __future__ import annotations

import abc
import random
from typing import Iterable, List, Optional

from repro.sim.types import AccessType, MemoryAccess


class WorkloadGenerator(abc.ABC):
    """A deterministic, seeded producer of memory-access traces.

    Subclasses implement :meth:`_generate`, yielding
    :class:`~repro.sim.types.MemoryAccess` records.  The base class provides
    the seeded RNG, common address-layout helpers and the public
    :meth:`generate` entry point that enforces the requested length.
    """

    #: Short name used in trace specifications and reports.
    kind: str = "base"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        if length <= 0:
            raise ValueError("trace length must be positive")
        if mean_instr_gap < 0:
            raise ValueError("mean_instr_gap must be non-negative")
        self.seed = seed
        self.length = length
        self.mean_instr_gap = mean_instr_gap
        self.region_size = region_size
        self.blocks_per_region = region_size // 64
        self.rng = random.Random(seed)
        self._pc_counter = 0x400000 + (seed & 0xFFFF) * 0x100

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def new_pc(self) -> int:
        """Allocate a fresh, stable program-counter value."""
        self._pc_counter += 4
        return self._pc_counter

    def instr_gap(self) -> int:
        """Draw a non-memory instruction gap around the configured mean."""
        if self.mean_instr_gap == 0:
            return 0
        low = max(0, int(self.mean_instr_gap * 0.5))
        high = int(self.mean_instr_gap * 1.5) + 1
        return self.rng.randint(low, high)

    def access(
        self,
        pc: int,
        address: int,
        access_type: AccessType = AccessType.LOAD,
        gap: Optional[int] = None,
    ) -> MemoryAccess:
        """Build a :class:`MemoryAccess` with a drawn instruction gap."""
        return MemoryAccess(
            pc=pc,
            address=address,
            access_type=access_type,
            instr_gap=self.instr_gap() if gap is None else gap,
        )

    def region_base(self, region: int) -> int:
        """Byte address of the start of ``region``."""
        return region * self.region_size

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> List[MemoryAccess]:
        """Produce exactly ``self.length`` memory accesses."""
        trace: List[MemoryAccess] = []
        generator = self._generate()
        for access in generator:
            trace.append(access)
            if len(trace) >= self.length:
                break
        # If the generator ran dry, replay deterministic copies of itself.
        while len(trace) < self.length:
            for access in self._generate():
                trace.append(access)
                if len(trace) >= self.length:
                    break
        return trace[: self.length]

    @abc.abstractmethod
    def _generate(self) -> Iterable[MemoryAccess]:
        """Yield memory accesses (may be finite or infinite)."""
