"""Graph-analytics workload generator (Ligra / GAP stand-in).

The paper analyses BFS-style frontier processing in detail (Fig. 5): graph
algorithms interleave

* dense streaming over the CSR offsets / edge arrays and over the frontier,
  with
* irregular accesses to per-vertex data that is scattered across many
  regions.

Two phases are modelled, matching the paper's observation that Ligra traces
from the *initial* phase (data preparation, almost pure streaming) behave
very differently from traces of the *computing* phase (interleaved
streaming + irregular):

* ``phase="init"``   -- building the CSR arrays: long dense sweeps.
* ``phase="compute"`` -- frontier traversal with neighbour lookups.

The synthetic graph is a power-law-ish random graph built with the seeded
RNG; no external graph data is required.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.types import MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


class GraphWorkload(WorkloadGenerator):
    """CSR graph traversal with configurable algorithm and phase.

    Parameters:
        num_vertices: number of vertices in the synthetic graph.
        avg_degree: average out-degree.
        algorithm: ``"pagerank"`` (full sweeps of the vertex set) or
            ``"bfs"`` (sparse, level-by-level frontiers).
        phase: ``"init"`` or ``"compute"`` (see module docstring).
    """

    kind = "graph"

    #: Address-space bases (region numbers) of the CSR arrays.
    _OFFSETS_BASE = 0x10000
    _EDGES_BASE = 0x20000
    _DATA_BASE = 0x80000
    _FRONTIER_BASE = 0x30000

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_vertices: int = 2048,
        avg_degree: int = 8,
        algorithm: str = "pagerank",
        phase: str = "compute",
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if algorithm not in ("pagerank", "bfs", "bellman-ford", "components"):
            raise ValueError(f"unknown graph algorithm: {algorithm!r}")
        if phase not in ("init", "compute"):
            raise ValueError(f"unknown phase: {phase!r}")
        self.num_vertices = num_vertices
        self.avg_degree = avg_degree
        self.algorithm = algorithm
        self.phase = phase
        self.adjacency = self._build_graph()
        # Dedicated PCs for each logical access site (Fig. 5's pseudocode).
        self.pc_offsets_load = self.new_pc()
        self.pc_edges_load = self.new_pc()
        self.pc_data_load = self.new_pc()
        self.pc_frontier_load = self.new_pc()
        self.pc_init_store = self.new_pc()

    # ------------------------------------------------------------------ #
    def _build_graph(self) -> List[List[int]]:
        """Build a skewed random adjacency list (preferential attachment-ish)."""
        adjacency: List[List[int]] = [[] for _ in range(self.num_vertices)]
        hubs = max(4, self.num_vertices // 64)
        for vertex in range(self.num_vertices):
            degree = max(1, int(self.rng.expovariate(1.0 / self.avg_degree)))
            neighbours = set()
            for _ in range(degree):
                if self.rng.random() < 0.3:
                    neighbours.add(self.rng.randrange(hubs))
                else:
                    neighbours.add(self.rng.randrange(self.num_vertices))
            adjacency[vertex] = sorted(neighbours)
        return adjacency

    # Address helpers ------------------------------------------------------ #
    def _offsets_address(self, vertex: int) -> int:
        return self._OFFSETS_BASE * self.region_size + vertex * 8

    def _edge_address(self, edge_index: int) -> int:
        return self._EDGES_BASE * self.region_size + edge_index * 8

    def _data_address(self, vertex: int) -> int:
        # Vertex data is padded so that consecutive vertices land in
        # different blocks, making neighbour lookups spatially irregular.
        return self._DATA_BASE * self.region_size + vertex * 72

    def _frontier_address(self, index: int) -> int:
        return self._FRONTIER_BASE * self.region_size + index * 8

    # Phases ---------------------------------------------------------------- #
    def _generate_init_phase(self) -> Iterable[MemoryAccess]:
        """Data preparation: stream the offsets and edge arrays in order."""
        edge_index = 0
        while True:
            for vertex in range(self.num_vertices):
                yield self.access(self.pc_offsets_load, self._offsets_address(vertex))
                for _ in self.adjacency[vertex]:
                    yield self.access(self.pc_init_store, self._edge_address(edge_index))
                    edge_index += 1

    def _frontier_for_iteration(self, iteration: int) -> List[int]:
        if self.algorithm == "pagerank":
            return list(range(self.num_vertices))
        # BFS-like algorithms: sparse frontiers that grow then shrink.
        size = max(8, int(self.num_vertices * min(0.4, 0.02 * (iteration + 1))))
        return sorted(self.rng.sample(range(self.num_vertices), k=min(size, self.num_vertices)))

    def _generate_compute_phase(self) -> Iterable[MemoryAccess]:
        """Frontier traversal: streaming frontier/edges + irregular data."""
        iteration = 0
        edge_cursor = 0
        while True:
            frontier = self._frontier_for_iteration(iteration)
            for position, vertex in enumerate(frontier):
                # Read the frontier entry itself (dense stream).
                yield self.access(
                    self.pc_frontier_load, self._frontier_address(position)
                )
                # Read the CSR offsets for this vertex.
                yield self.access(self.pc_offsets_load, self._offsets_address(vertex))
                # Walk the neighbour list: edge array is streamed, the
                # per-neighbour data accesses are irregular.
                for neighbour in self.adjacency[vertex]:
                    yield self.access(self.pc_edges_load, self._edge_address(edge_cursor))
                    edge_cursor += 1
                    yield self.access(self.pc_data_load, self._data_address(neighbour))
            iteration += 1

    def _generate(self) -> Iterable[MemoryAccess]:
        if self.phase == "init":
            return self._generate_init_phase()
        return self._generate_compute_phase()
