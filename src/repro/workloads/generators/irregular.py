"""Irregular workload generators: pointer chasing and scale-out cloud.

``PointerChaseWorkload`` models mcf/omnetpp-style dependent pointer chasing
with essentially no spatial pattern -- the workloads on the left edge of the
paper's Fig. 9 where every characterization scheme struggles and aggressive
prefetchers lose performance.

``CloudWorkload`` models the CloudSuite scale-out server behaviour the
paper's Fig. 1 is built around: access patterns *are* predictable, but only
with fine-grained characterization -- footprints correlate with the request
handler (PC) and with the first two accesses of the touched object, not
with the trigger offset alone -- and a substantial fraction of the accesses
(hash probes, buffer management) are simply irregular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.sim.types import MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


class PointerChaseWorkload(WorkloadGenerator):
    """Dependent pointer chasing over a randomly laid-out node pool.

    Parameters:
        num_nodes: number of linked-list/tree nodes.
        node_span_blocks: address-space spread (in blocks) over which nodes
            are scattered; larger values reduce spatial locality further.
        locality_fraction: fraction of accesses that touch a small hot set
            (models stack/metadata hits so the workload is not 100% misses).
    """

    kind = "pointer-chase"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_nodes: int = 16_384,
        node_span_blocks: int = 262_144,
        locality_fraction: float = 0.25,
        mean_instr_gap: float = 8.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        self.num_nodes = num_nodes
        self.node_span_blocks = node_span_blocks
        self.locality_fraction = locality_fraction
        # Scatter nodes over the span and build one long random cycle.
        self._node_blocks = self.rng.sample(
            range(0x100000, 0x100000 + node_span_blocks), k=num_nodes
        )
        order = list(range(num_nodes))
        self.rng.shuffle(order)
        self._next_node = {
            order[i]: order[(i + 1) % num_nodes] for i in range(num_nodes)
        }
        self._chase_pc = self.new_pc()
        self._hot_pc = self.new_pc()
        self._hot_blocks = [0xF0000 + i for i in range(16)]

    def _generate(self) -> Iterable[MemoryAccess]:
        node = 0
        while True:
            if self.rng.random() < self.locality_fraction:
                block = self.rng.choice(self._hot_blocks)
                yield self.access(self._hot_pc, block * 64)
                continue
            block = self._node_blocks[node]
            yield self.access(self._chase_pc, block * 64 + self.rng.randrange(0, 64, 8))
            node = self._next_node[node]


@dataclass
class _RequestHandler:
    """One server request handler: PCs plus a characteristic object footprint."""

    pc: int
    footprint_offsets: List[int]


class CloudWorkload(WorkloadGenerator):
    """Scale-out server workload (CloudSuite / QMM-server stand-in).

    The access stream interleaves:

    * object accesses issued by a set of request handlers -- each handler
      touches freshly allocated objects (new regions) with its own sparse
      footprint, reproducing both the spatial pattern recurrence and the
      PC correlation of server software;
    * irregular accesses (hash-table probes, allocator metadata) with no
      exploitable pattern;
    * short code-correlated strides (log writers, ring buffers) that favour
      PC/delta-based prefetchers' accuracy.

    Handlers are constructed so that many share the same trigger offset but
    differ in their second offset and the rest of the footprint -- the
    situation in which trigger-offset-only characterization (PMP, Offset)
    produces large volumes of wrong prefetches.
    """

    kind = "cloud"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_handlers: int = 24,
        handlers_per_trigger: int = 4,
        footprint_blocks: int = 8,
        irregular_fraction: float = 0.40,
        strided_fraction: float = 0.10,
        concurrency: int = 6,
        mean_instr_gap: float = 7.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        self.num_handlers = num_handlers
        self.handlers_per_trigger = max(1, handlers_per_trigger)
        self.footprint_blocks = max(2, footprint_blocks)
        self.irregular_fraction = irregular_fraction
        self.strided_fraction = strided_fraction
        self.concurrency = max(1, concurrency)
        self.handlers = self._build_handlers()
        self._irregular_pc = self.new_pc()
        self._stride_pc = self.new_pc()
        self._stride_position = 0
        self._next_region = 0x200000 + (seed % 71) * 0x2000
        self._irregular_span = 0x400000

    def _build_handlers(self) -> List[_RequestHandler]:
        handlers: List[_RequestHandler] = []
        num_triggers = max(1, self.num_handlers // self.handlers_per_trigger)
        triggers = self.rng.sample(range(self.blocks_per_region), k=min(num_triggers, 32))
        for index in range(self.num_handlers):
            trigger = triggers[index % len(triggers)]
            second = (trigger + 2 + (index // len(triggers)) * 5) % self.blocks_per_region
            if second == trigger:
                second = (second + 1) % self.blocks_per_region
            pool = [
                o for o in range(self.blocks_per_region) if o not in (trigger, second)
            ]
            body = sorted(
                self.rng.sample(pool, k=min(self.footprint_blocks - 2, len(pool)))
            )
            handlers.append(
                _RequestHandler(pc=self.new_pc(), footprint_offsets=[trigger, second] + body)
            )
        return handlers

    def _new_region(self) -> int:
        self._next_region += 1 + self.rng.randrange(4)
        return self._next_region

    def _handler_request(self) -> List[MemoryAccess]:
        handler = self.rng.choice(self.handlers)
        region = self._new_region()
        base = self.region_base(region)
        return [
            self.access(handler.pc, base + offset * 64)
            for offset in handler.footprint_offsets
        ]

    def _irregular_access(self) -> MemoryAccess:
        block = 0x600000 + self.rng.randrange(self._irregular_span)
        return self.access(self._irregular_pc, block * 64)

    def _stride_access(self) -> MemoryAccess:
        self._stride_position += 1
        address = 0x900000 * 64 + self._stride_position * 64
        return self.access(self._stride_pc, address)

    def _generate(self) -> Iterable[MemoryAccess]:
        # In-flight handler requests, interleaved with irregular traffic.
        active: List[List[MemoryAccess]] = [
            self._handler_request() for _ in range(self.concurrency)
        ]
        cursors = [0] * self.concurrency
        slot = 0
        while True:
            roll = self.rng.random()
            if roll < self.irregular_fraction:
                yield self._irregular_access()
                continue
            if roll < self.irregular_fraction + self.strided_fraction:
                yield self._stride_access()
                continue
            if cursors[slot] >= len(active[slot]):
                active[slot] = self._handler_request()
                cursors[slot] = 0
            yield active[slot][cursors[slot]]
            cursors[slot] += 1
            slot = (slot + 1) % self.concurrency
