"""Workload generators with genuine temporal reuse.

The original bench/test traces are dominated by streaming and spatial
footprints over *freshly allocated* regions: almost no block is touched
twice while it is still resident in the L1, so neither the temporal
prefetchers nor the batched kernel's L1-hit-run fast path
(:meth:`repro.sim.cache.Cache.demand_hit_run`) sees realistic input.
These generators produce the opposite regime — recurring address
*sequences* (the address-pair correlations temporal prefetchers replay)
and short reuse distances (the dense L1-hit runs the chunked kernel
retires in bulk):

* :class:`TemporalPointerChaseWorkload` — pointer chasing over a fixed
  linked cycle that is re-traversed pass after pass, so the same miss
  sequence recurs (mcf-style structure with linkbench-style recurrence);
* :class:`RingBufferWorkload` — a producer-consumer ring queue: hot
  head/tail control blocks on every operation plus slot addresses that
  recur with the ring period;
* :class:`HashProbeWorkload` — hash-table probes with a skewed key
  popularity: each hot key's bucket-and-chain walk is a short fixed
  address sequence that repeats whenever the key is probed.

All three honour the generator contract: seeded determinism, exact
length, streamability and round-trips through every trace format.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


class TemporalPointerChaseWorkload(WorkloadGenerator):
    """Recurrent pointer chasing: the same linked cycle, traversed repeatedly.

    Unlike :class:`~repro.workloads.generators.irregular.PointerChaseWorkload`
    (one endless walk over a huge scattered pool), the node pool here is
    bounded and the traversal *restarts from the same head* every
    ``walk_length`` steps.  With the default pool size the working set
    exceeds the L1 but the recurring miss order is exactly what
    address-pair correlation predicts; shrink ``num_nodes`` below the L1
    capacity and the later passes become pure L1-hit runs instead.

    Parameters:
        num_nodes: linked nodes in the cycle (one block each).
        walk_length: steps per traversal before restarting at the head
            (0 = the full cycle).
        noise_fraction: fraction of accesses hitting a wide random span
            (breaks runs and pollutes correlation, like real metadata
            traffic).
        node_span_blocks: address spread over which nodes are scattered.
    """

    kind = "temporal-pointer"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_nodes: int = 2_048,
        walk_length: int = 0,
        noise_fraction: float = 0.05,
        node_span_blocks: int = 65_536,
        mean_instr_gap: float = 6.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if num_nodes <= 1:
            raise ValueError("num_nodes must be at least 2")
        self.num_nodes = num_nodes
        self.walk_length = walk_length if walk_length > 0 else num_nodes
        self.noise_fraction = noise_fraction
        span = max(node_span_blocks, num_nodes)
        self._node_blocks = self.rng.sample(
            range(0x400000, 0x400000 + span), k=num_nodes
        )
        order = list(range(num_nodes))
        self.rng.shuffle(order)
        self._next_node = [0] * num_nodes
        for i in range(num_nodes):
            self._next_node[order[i]] = order[(i + 1) % num_nodes]
        self._head = order[0]
        self._chase_pc = self.new_pc()
        self._noise_pc = self.new_pc()

    def _generate(self) -> Iterable[MemoryAccess]:
        node = self._head
        steps = 0
        while True:
            if self.noise_fraction and self.rng.random() < self.noise_fraction:
                block = 0x2000000 + self.rng.randrange(0x400000)
                yield self.access(self._noise_pc, block * 64)
                continue
            yield self.access(self._chase_pc, self._node_blocks[node] * 64)
            node = self._next_node[node]
            steps += 1
            if steps >= self.walk_length:
                # Recurrence: the next traversal replays the same sequence.
                node = self._head
                steps = 0


class RingBufferWorkload(WorkloadGenerator):
    """Producer-consumer ring queue with hot control blocks.

    Each produce operation loads the head counter block, stores the slot;
    each consume loads the tail counter block, loads the slot ``lag``
    items behind the producer.  The two counter blocks are touched on
    every operation (reuse distance ~2), and slot addresses recur with
    period ``slots`` — both genuine temporal reuse, at two very different
    distances.

    Parameters:
        slots: ring capacity in items.
        item_blocks: contiguous blocks per item.
        lag: items the consumer trails the producer by.
        burst: operations performed per role before switching.
    """

    kind = "ring"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        slots: int = 256,
        item_blocks: int = 1,
        lag: int = 64,
        burst: int = 8,
        mean_instr_gap: float = 4.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if slots <= 1:
            raise ValueError("slots must be at least 2")
        if item_blocks <= 0:
            raise ValueError("item_blocks must be positive")
        self.slots = slots
        self.item_blocks = item_blocks
        self.lag = max(1, min(lag, slots - 1))
        self.burst = max(1, burst)
        base = 0x800000 + (seed & 0xFF) * 0x10000
        self._ring_base_block = base
        self._head_ctrl = (base - 16) * 64
        self._tail_ctrl = (base - 8) * 64
        self._producer_pc = self.new_pc()
        self._consumer_pc = self.new_pc()
        self._head_pc = self.new_pc()
        self._tail_pc = self.new_pc()

    def _slot_address(self, item_index: int, block: int) -> int:
        slot = item_index % self.slots
        return (self._ring_base_block + slot * self.item_blocks + block) * 64

    def _generate(self) -> Iterable[MemoryAccess]:
        produced = self.lag  # start with the consumer's lag already queued
        consumed = 0
        producing = True
        in_burst = 0
        while True:
            if producing:
                yield self.access(self._head_pc, self._head_ctrl)
                for block in range(self.item_blocks):
                    yield self.access(
                        self._producer_pc,
                        self._slot_address(produced, block),
                        AccessType.STORE,
                    )
                produced += 1
            else:
                yield self.access(self._tail_pc, self._tail_ctrl)
                for block in range(self.item_blocks):
                    yield self.access(
                        self._consumer_pc, self._slot_address(consumed, block)
                    )
                consumed += 1
            in_burst += 1
            if in_burst >= self.burst:
                in_burst = 0
                producing = not producing
                # Keep the consumer exactly ``lag`` items behind.
                if producing and produced - consumed < self.lag:
                    producing = False
                elif not producing and produced - consumed <= 0:
                    producing = True


class HashProbeWorkload(WorkloadGenerator):
    """Hash-table probe sequences with skewed key popularity.

    A fixed set of keys hashes into a bucket array; each key owns a short
    chain of scattered nodes ending in a value block.  Probing a key
    walks bucket → chain → value in a fixed order, so every re-probe of
    the same key replays the same short address sequence — address-pair
    correlation at its purest.  Key popularity is skewed (``zipf_s``), so
    hot keys recur at short reuse distances while the tail stays cold.

    Parameters:
        num_keys: distinct keys in the table.
        buckets: bucket-array entries (8 per block).
        max_chain: longest per-key chain (per-key length is fixed, drawn
            once from [1, max_chain]).
        zipf_s: popularity skew (higher = hotter head; 1.0 = uniform-ish).
        miss_fraction: probes for absent keys (bucket load + one wild
            block, no recurring chain).
    """

    kind = "hash-probe"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_keys: int = 512,
        buckets: int = 1_024,
        max_chain: int = 3,
        zipf_s: float = 3.0,
        miss_fraction: float = 0.10,
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if num_keys <= 0:
            raise ValueError("num_keys must be positive")
        if max_chain <= 0:
            raise ValueError("max_chain must be positive")
        self.num_keys = num_keys
        self.buckets = buckets
        self.zipf_s = zipf_s
        self.miss_fraction = miss_fraction
        self._bucket_base_block = 0xA00000 + (seed & 0xFF) * 0x4000
        node_span = max(4 * num_keys * max_chain, 1 << 14)
        node_pool = self.rng.sample(
            range(0xC00000, 0xC00000 + node_span), k=num_keys * (max_chain + 1)
        )
        cursor = 0
        #: Per-key probe sequence: bucket block, chain node blocks, value.
        self._key_blocks: List[List[int]] = []
        for key in range(num_keys):
            bucket = self._bucket_base_block + (
                (key * 2654435761) % (buckets * 8)
            ) // 8
            chain_length = 1 + self.rng.randrange(max_chain)
            blocks = [bucket]
            blocks.extend(node_pool[cursor : cursor + chain_length])
            cursor += chain_length
            self._key_blocks.append(blocks)
        self._probe_pc = self.new_pc()
        self._chain_pc = self.new_pc()
        self._miss_pc = self.new_pc()

    def _pick_key(self) -> int:
        # Power-law popularity: u**s compresses the draw toward index 0.
        return int(self.num_keys * (self.rng.random() ** self.zipf_s))

    def _generate(self) -> Iterable[MemoryAccess]:
        while True:
            if self.miss_fraction and self.rng.random() < self.miss_fraction:
                bucket = self._bucket_base_block + self.rng.randrange(
                    self.buckets * 8
                ) // 8
                yield self.access(self._miss_pc, bucket * 64)
                wild = 0x3000000 + self.rng.randrange(0x100000)
                yield self.access(self._miss_pc, wild * 64)
                continue
            blocks = self._key_blocks[min(self._pick_key(), self.num_keys - 1)]
            yield self.access(self._probe_pc, blocks[0] * 64)
            for block in blocks[1:]:
                yield self.access(self._chain_pc, block * 64)
