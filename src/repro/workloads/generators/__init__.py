"""Workload generators.

Each generator derives from
:class:`repro.workloads.generators.base.WorkloadGenerator` and produces a
deterministic (seeded) list of :class:`repro.sim.types.MemoryAccess`.
``GENERATORS`` maps short names to generator classes so traces can be
described declaratively by :mod:`repro.workloads.suites`.
"""

from repro.workloads.generators.base import WorkloadGenerator
from repro.workloads.generators.streaming import StreamingWorkload, StridedWorkload
from repro.workloads.generators.spatial import SpatialRecurrenceWorkload
from repro.workloads.generators.graph import GraphWorkload
from repro.workloads.generators.irregular import CloudWorkload, PointerChaseWorkload
from repro.workloads.generators.mixed import MixedPhaseWorkload

GENERATORS = {
    "streaming": StreamingWorkload,
    "strided": StridedWorkload,
    "spatial": SpatialRecurrenceWorkload,
    "graph": GraphWorkload,
    "pointer-chase": PointerChaseWorkload,
    "cloud": CloudWorkload,
    "mixed": MixedPhaseWorkload,
}

__all__ = [
    "GENERATORS",
    "CloudWorkload",
    "GraphWorkload",
    "MixedPhaseWorkload",
    "PointerChaseWorkload",
    "SpatialRecurrenceWorkload",
    "StreamingWorkload",
    "StridedWorkload",
    "WorkloadGenerator",
]
