"""Workload generators.

Each generator derives from
:class:`repro.workloads.generators.base.WorkloadGenerator` and produces a
deterministic (seeded) list of :class:`repro.sim.types.MemoryAccess`.
``GENERATORS`` maps short names to generator classes so traces can be
described declaratively by :mod:`repro.workloads.suites`.
"""

from repro.workloads.generators.base import WorkloadGenerator
from repro.workloads.generators.streaming import StreamingWorkload, StridedWorkload
from repro.workloads.generators.spatial import SpatialRecurrenceWorkload
from repro.workloads.generators.graph import GraphWorkload
from repro.workloads.generators.irregular import CloudWorkload, PointerChaseWorkload
from repro.workloads.generators.mixed import MixedPhaseWorkload
from repro.workloads.generators.temporal import (
    HashProbeWorkload,
    RingBufferWorkload,
    TemporalPointerChaseWorkload,
)

GENERATORS = {
    "streaming": StreamingWorkload,
    "strided": StridedWorkload,
    "spatial": SpatialRecurrenceWorkload,
    "graph": GraphWorkload,
    "pointer-chase": PointerChaseWorkload,
    "cloud": CloudWorkload,
    "mixed": MixedPhaseWorkload,
    "temporal-pointer": TemporalPointerChaseWorkload,
    "ring": RingBufferWorkload,
    "hash-probe": HashProbeWorkload,
}

__all__ = [
    "GENERATORS",
    "CloudWorkload",
    "GraphWorkload",
    "HashProbeWorkload",
    "MixedPhaseWorkload",
    "PointerChaseWorkload",
    "RingBufferWorkload",
    "SpatialRecurrenceWorkload",
    "StreamingWorkload",
    "StridedWorkload",
    "TemporalPointerChaseWorkload",
    "WorkloadGenerator",
]
