"""Streaming and strided workload generators.

These model the SPEC fp style workloads the paper repeatedly singles out
(``bwaves``, ``lbm``, ``leslie3d``, ``roms``): long, dense, spatially-strided
sweeps over large arrays.  Their region footprints are extremely dense --
typically every block of every region -- which is exactly the behaviour
Gaze's streaming module (DPCT/DC + two-stage aggressiveness) targets.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads.generators.base import WorkloadGenerator


class StreamingWorkload(WorkloadGenerator):
    """Dense sequential sweeps over one or more large arrays.

    Parameters:
        num_arrays: number of independent arrays streamed in a round-robin
            interleaving (models multiple simultaneous stream buffers).
        accesses_per_block: how many element loads touch each 64-byte block
            (8-byte elements would give 8; the default of 2 keeps traces
            short while preserving dense footprints).
        revisit_fraction: fraction of regions that are streamed a second
            time shortly after the first pass (creates the redundant
            re-traversals that penalise delta prefetchers without a
            region-activation check).
    """

    kind = "streaming"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        num_arrays: int = 2,
        accesses_per_block: int = 3,
        revisit_fraction: float = 0.15,
        mean_instr_gap: float = 8.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        if accesses_per_block < 1:
            raise ValueError("accesses_per_block must be >= 1")
        self.num_arrays = num_arrays
        self.accesses_per_block = accesses_per_block
        self.revisit_fraction = revisit_fraction
        # Arrays live in disjoint, far-apart address ranges.
        self._array_base_regions = [
            0x1000 + i * 0x40000 + (seed % 97) * 0x1000 for i in range(num_arrays)
        ]
        self._array_pcs = [self.new_pc() for _ in range(num_arrays)]

    def _region_accesses(
        self, array_index: int, region_index: int
    ) -> Iterable[MemoryAccess]:
        """Yield a fully dense, in-order sweep of one region."""
        region = self._array_base_regions[array_index] + region_index
        base = self.region_base(region)
        pc = self._array_pcs[array_index]
        for offset in range(self.blocks_per_region):
            for element in range(self.accesses_per_block):
                yield self.access(pc, base + offset * 64 + element * 8)

    def _generate(self) -> Iterable[MemoryAccess]:
        region_index = 0
        while True:
            for array_index in range(self.num_arrays):
                yield from self._region_accesses(array_index, region_index)
                if self.rng.random() < self.revisit_fraction:
                    # Re-traverse the region just streamed (data reuse).
                    yield from self._region_accesses(array_index, region_index)
            region_index += 1


class StridedWorkload(WorkloadGenerator):
    """Constant-stride sweeps (non-unit strides give partial footprints).

    A stride of ``s`` blocks touches every ``s``-th block of each region,
    producing regular-but-not-dense footprints; this is the territory where
    classic IP-stride and delta prefetchers do well and where spatial
    prefetchers must learn the strided footprint.
    """

    kind = "strided"

    def __init__(
        self,
        seed: int = 0,
        length: int = 50_000,
        stride_blocks: int = 3,
        num_streams: int = 2,
        mean_instr_gap: float = 5.0,
        region_size: int = 4096,
    ) -> None:
        super().__init__(
            seed=seed,
            length=length,
            mean_instr_gap=mean_instr_gap,
            region_size=region_size,
        )
        if stride_blocks < 1:
            raise ValueError("stride_blocks must be >= 1")
        self.stride_blocks = stride_blocks
        self.num_streams = num_streams
        self._stream_base_regions = [
            0x2000 + i * 0x80000 + (seed % 89) * 0x800 for i in range(num_streams)
        ]
        self._stream_pcs = [self.new_pc() for _ in range(num_streams)]
        self._stream_phase = [
            self.rng.randrange(stride_blocks) for _ in range(num_streams)
        ]

    def _generate(self) -> Iterable[MemoryAccess]:
        positions = [0] * self.num_streams
        while True:
            for stream in range(self.num_streams):
                region_index = positions[stream] // self.blocks_per_region
                offset = positions[stream] % self.blocks_per_region
                region = self._stream_base_regions[stream] + region_index
                address = self.region_base(region) + offset * 64
                yield self.access(self._stream_pcs[stream], address)
                positions[stream] += self.stride_blocks
