"""Benchmark suites mirroring the paper's Table III.

Each suite is a list of :class:`repro.workloads.trace.TraceSpec`.  Trace
names follow the paper's naming (``bwaves_s-like``, ``PageRank-like``,
``cassandra-like`` ...) so that figure reproductions read like the paper's
x-axes.  The number of traces per suite is scaled down from the paper's 201
(this is a Python reproduction; the simulator is several orders of magnitude
slower than ChampSim), but every suite and every access-pattern family is
represented.  Experiments can scale trace length via ``build(length=...)``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.trace import TraceSpec


def _spec(name, suite, generator, seed, **params) -> TraceSpec:
    return TraceSpec(
        name=name, suite=suite, generator=generator, params=params, seed=seed
    )


# --------------------------------------------------------------------------- #
# SPEC CPU2006-like: scientific streaming + integer irregular/spatial codes.
# --------------------------------------------------------------------------- #
SPEC06_TRACES: List[TraceSpec] = [
    _spec("leslie3d-like", "spec06", "streaming", 101, num_arrays=3),
    _spec("milc-like", "spec06", "streaming", 102, num_arrays=2, revisit_fraction=0.3),
    _spec("libquantum-like", "spec06", "strided", 103, stride_blocks=1, num_streams=1),
    _spec("GemsFDTD-like", "spec06", "strided", 104, stride_blocks=2, num_streams=3),
    _spec("soplex-like", "spec06", "spatial", 105, num_classes=10, footprint_blocks=20),
    _spec("sphinx3-like", "spec06", "spatial", 106, num_classes=16, footprint_blocks=12),
    _spec("gcc-like", "spec06", "spatial", 107, num_classes=24, footprint_blocks=8,
          noise_fraction=0.25),
    _spec("mcf-like", "spec06", "pointer-chase", 108),
    _spec("omnetpp-like", "spec06", "pointer-chase", 109, locality_fraction=0.45),
    _spec("cactusADM-like", "spec06", "mixed", 110, dense_fraction=0.7),
    _spec("lbm-like", "spec06", "streaming", 111, num_arrays=4, accesses_per_block=1),
    _spec("wrf-like", "spec06", "mixed", 112, dense_fraction=0.55),
]

# --------------------------------------------------------------------------- #
# SPEC CPU2017-like.
# --------------------------------------------------------------------------- #
SPEC17_TRACES: List[TraceSpec] = [
    _spec("bwaves_s-like", "spec17", "streaming", 201, num_arrays=2,
          accesses_per_block=2),
    _spec("lbm_s-like", "spec17", "streaming", 202, num_arrays=4, accesses_per_block=1),
    _spec("roms_s-like", "spec17", "streaming", 203, num_arrays=3, revisit_fraction=0.2),
    _spec("fotonik3d_s-like", "spec17", "spatial", 204, num_classes=8,
          classes_per_trigger=4, footprint_blocks=24),
    _spec("cam4_s-like", "spec17", "mixed", 205, dense_fraction=0.6),
    _spec("pop2_s-like", "spec17", "mixed", 206, dense_fraction=0.5, prefix_blocks=8),
    _spec("gcc_s-like", "spec17", "spatial", 207, num_classes=24, footprint_blocks=8,
          noise_fraction=0.3),
    _spec("xalancbmk_s-like", "spec17", "spatial", 208, num_classes=32,
          footprint_blocks=6, noise_fraction=0.35, concurrency=8),
    _spec("mcf_s-like", "spec17", "pointer-chase", 209),
    _spec("omnetpp_s-like", "spec17", "pointer-chase", 210, locality_fraction=0.4),
    _spec("cactuBSSN_s-like", "spec17", "strided", 211, stride_blocks=2, num_streams=4),
    _spec("wrf_s-like", "spec17", "mixed", 212, dense_fraction=0.65),
]

# --------------------------------------------------------------------------- #
# Ligra-like graph analytics (both phases, several algorithms).
# --------------------------------------------------------------------------- #
LIGRA_TRACES: List[TraceSpec] = [
    _spec("PageRank-init-like", "ligra", "graph", 301, algorithm="pagerank",
          phase="init"),
    _spec("PageRank-like", "ligra", "graph", 302, algorithm="pagerank",
          phase="compute"),
    _spec("BFS-init-like", "ligra", "graph", 303, algorithm="bfs", phase="init"),
    _spec("BFS-like", "ligra", "graph", 304, algorithm="bfs", phase="compute"),
    _spec("BellmanFord-like", "ligra", "graph", 305, algorithm="bellman-ford",
          phase="compute"),
    _spec("Components-like", "ligra", "graph", 306, algorithm="components",
          phase="compute"),
    _spec("BC-like", "ligra", "graph", 307, algorithm="bfs", phase="compute",
          avg_degree=12),
    _spec("MIS-like", "ligra", "graph", 308, algorithm="components", phase="compute",
          avg_degree=6),
]

# --------------------------------------------------------------------------- #
# PARSEC-like.
# --------------------------------------------------------------------------- #
PARSEC_TRACES: List[TraceSpec] = [
    _spec("facesim-like", "parsec", "mixed", 401, dense_fraction=0.6),
    _spec("streamcluster-like", "parsec", "streaming", 402, num_arrays=2,
          revisit_fraction=0.4),
    _spec("canneal-like", "parsec", "pointer-chase", 403, locality_fraction=0.2),
    _spec("fluidanimate-like", "parsec", "strided", 404, stride_blocks=2),
]

# --------------------------------------------------------------------------- #
# CloudSuite-like scale-out server workloads.
# --------------------------------------------------------------------------- #
CLOUD_TRACES: List[TraceSpec] = [
    _spec("cassandra-like", "cloud", "cloud", 501, num_handlers=32,
          handlers_per_trigger=4, irregular_fraction=0.40),
    _spec("nutch-like", "cloud", "cloud", 502, num_handlers=24,
          handlers_per_trigger=3, irregular_fraction=0.45),
    _spec("cloud9-like", "cloud", "cloud", 503, num_handlers=40,
          handlers_per_trigger=5, irregular_fraction=0.50, footprint_blocks=6),
    _spec("streaming-srv-like", "cloud", "cloud", 504, num_handlers=16,
          handlers_per_trigger=2, irregular_fraction=0.30, strided_fraction=0.2),
    _spec("classification-like", "cloud", "cloud", 505, num_handlers=28,
          handlers_per_trigger=4, irregular_fraction=0.45, footprint_blocks=10),
]

# --------------------------------------------------------------------------- #
# GAP-like graph analytics (supplementary, Fig. 12a).
# --------------------------------------------------------------------------- #
GAP_TRACES: List[TraceSpec] = [
    _spec("pr.twi-like", "gap", "graph", 601, algorithm="pagerank", phase="compute",
          num_vertices=8192, avg_degree=16),
    _spec("pr.web-like", "gap", "graph", 602, algorithm="pagerank", phase="compute",
          num_vertices=8192, avg_degree=6),
    _spec("cc.twi-like", "gap", "graph", 603, algorithm="components", phase="compute",
          num_vertices=8192, avg_degree=16),
    _spec("cc.web-like", "gap", "graph", 604, algorithm="components", phase="compute",
          num_vertices=8192, avg_degree=6),
    _spec("tc.twi-like", "gap", "graph", 605, algorithm="bfs", phase="compute",
          num_vertices=8192, avg_degree=16),
    _spec("tc.web-like", "gap", "graph", 606, algorithm="bfs", phase="compute",
          num_vertices=8192, avg_degree=6),
]

# --------------------------------------------------------------------------- #
# QMM-like industry traces (supplementary, Fig. 12b): server workloads are
# instruction-miss bound (low data-miss sensitivity -> large instruction
# gaps); client workloads are memory-intensive computing tasks.
# --------------------------------------------------------------------------- #
QMM_TRACES: List[TraceSpec] = [
    _spec("srv.09-like", "qmm-server", "cloud", 701, irregular_fraction=0.55,
          mean_instr_gap=30.0, footprint_blocks=5),
    _spec("srv.27-like", "qmm-server", "cloud", 702, irregular_fraction=0.50,
          mean_instr_gap=35.0, footprint_blocks=6),
    _spec("srv.46-like", "qmm-server", "cloud", 703, irregular_fraction=0.60,
          mean_instr_gap=28.0, footprint_blocks=4),
    _spec("clt.fp.06-like", "qmm-client", "streaming", 704, num_arrays=3),
    _spec("clt.int.01-like", "qmm-client", "spatial", 705, num_classes=12,
          footprint_blocks=16),
    _spec("clt.int.19-like", "qmm-client", "strided", 706, stride_blocks=2),
]

# --------------------------------------------------------------------------- #
# Temporal-reuse workloads (not in the paper's Table III): the recurring
# address sequences temporal prefetchers replay, used by the
# spatial-vs-temporal comparison (fig19) and the hit-run regression suite.
# --------------------------------------------------------------------------- #
TEMPORAL_TRACES: List[TraceSpec] = [
    _spec("linkwalk-like", "temporal", "temporal-pointer", 801),
    _spec("linkwalk-deep-like", "temporal", "temporal-pointer", 802,
          num_nodes=3072, noise_fraction=0.02),
    _spec("kvprobe-like", "temporal", "hash-probe", 803),
    _spec("kvprobe-hot-like", "temporal", "hash-probe", 804, num_keys=256,
          zipf_s=4.0, miss_fraction=0.05),
    _spec("ringqueue-like", "temporal", "ring", 805),
    _spec("ringqueue-wide-like", "temporal", "ring", 806, slots=512,
          item_blocks=2, lag=128),
]

#: All suites keyed by the names used throughout the experiments.
SUITES: Dict[str, List[TraceSpec]] = {
    "spec06": SPEC06_TRACES,
    "spec17": SPEC17_TRACES,
    "ligra": LIGRA_TRACES,
    "parsec": PARSEC_TRACES,
    "cloud": CLOUD_TRACES,
    "gap": GAP_TRACES,
    "qmm-server": [t for t in QMM_TRACES if t.suite == "qmm-server"],
    "qmm-client": [t for t in QMM_TRACES if t.suite == "qmm-client"],
    "temporal": TEMPORAL_TRACES,
}

#: The suites making up the paper's main single-core evaluation set.
MAIN_SUITES = ("spec06", "spec17", "ligra", "parsec", "cloud")


def suite_names() -> List[str]:
    """Names of all available suites."""
    return list(SUITES)


def trace_specs_for_suite(suite: str) -> List[TraceSpec]:
    """Trace specifications of one suite."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {', '.join(SUITES)}")
    return list(SUITES[suite])


def all_trace_specs(main_only: bool = True) -> List[TraceSpec]:
    """All trace specs, optionally restricted to the main evaluation suites."""
    suites = MAIN_SUITES if main_only else tuple(SUITES)
    specs: List[TraceSpec] = []
    for suite in suites:
        specs.extend(SUITES[suite])
    return specs
