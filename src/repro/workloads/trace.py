"""Trace specifications, construction, persistence and statistics."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.hashing import content_hash
from repro.sim.types import AccessType, MemoryAccess


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one synthetic trace.

    Attributes:
        name: trace name used in reports (mirrors the paper's trace naming,
            e.g. ``"bwaves_s-like"``).
        suite: benchmark suite the trace belongs to (``"spec17"``, ``"ligra"``,
            ...).
        generator: key into :data:`repro.workloads.generators.GENERATORS`.
        params: keyword arguments forwarded to the generator constructor.
        seed: RNG seed (kept separate from params so sweeps can vary it).
        length: number of memory accesses to generate.
    """

    name: str
    suite: str
    generator: str
    params: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    length: int = 40_000

    def to_dict(self) -> Dict[str, object]:
        """Deterministic plain-data representation (params key-sorted)."""
        return {
            "name": self.name,
            "suite": self.suite,
            "generator": self.generator,
            "params": {key: self.params[key] for key in sorted(self.params)},
            "seed": self.seed,
            "length": self.length,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceSpec":
        """Rebuild a :class:`TraceSpec` from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            suite=data["suite"],
            generator=data["generator"],
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            length=data.get("length", 40_000),
        )

    def content_key(self) -> str:
        """Stable hash of everything that determines the generated trace.

        Generators are seed-deterministic, so two specs with the same
        content key produce byte-identical traces in any process.
        """
        return content_hash(self.to_dict())

    def build(self, length: Optional[int] = None) -> List[MemoryAccess]:
        """Instantiate the generator and produce the trace."""
        from repro.workloads.generators import GENERATORS

        if self.generator not in GENERATORS:
            raise KeyError(f"unknown generator {self.generator!r}")
        generator_cls = GENERATORS[self.generator]
        generator = generator_cls(
            seed=self.seed,
            length=length if length is not None else self.length,
            **self.params,
        )
        return generator.generate()


def make_trace(
    kind: Union[str, TraceSpec],
    seed: int = 0,
    length: int = 40_000,
    **params,
) -> List[MemoryAccess]:
    """Build a trace either from a :class:`TraceSpec` or a generator name.

    When ``kind`` is a :class:`TraceSpec`, the spec's own length and
    parameters are used verbatim.
    """
    if isinstance(kind, TraceSpec):
        return kind.build()
    spec = TraceSpec(
        name=f"{kind}-{seed}",
        suite="adhoc",
        generator=kind,
        params=params,
        seed=seed,
        length=length,
    )
    return spec.build()


# --------------------------------------------------------------------------- #
# Persistence (simple JSON-lines format)
# --------------------------------------------------------------------------- #
def save_trace(trace: Sequence[MemoryAccess], path: Union[str, Path]) -> None:
    """Write a trace to disk as JSON lines (pc, address, type, gap)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for access in trace:
            handle.write(
                json.dumps(
                    {
                        "pc": access.pc,
                        "addr": access.address,
                        "type": access.access_type.value,
                        "gap": access.instr_gap,
                    }
                )
            )
            handle.write("\n")


def load_trace(path: Union[str, Path]) -> List[MemoryAccess]:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    trace: List[MemoryAccess] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            trace.append(
                MemoryAccess(
                    pc=int(record["pc"]),
                    address=int(record["addr"]),
                    access_type=AccessType(record.get("type", "load")),
                    instr_gap=int(record.get("gap", 0)),
                )
            )
    return trace


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #
def trace_statistics(
    trace: Sequence[MemoryAccess], region_size: int = 4096
) -> Dict[str, float]:
    """Summarise a trace: distinct blocks/regions/PCs, density, footprint size.

    Useful for sanity-checking that a generator produces the access-pattern
    characteristics it advertises (tests rely on this).
    """
    if not trace:
        return {
            "accesses": 0,
            "instructions": 0,
            "distinct_blocks": 0,
            "distinct_regions": 0,
            "distinct_pcs": 0,
            "mean_region_density": 0.0,
        }
    blocks = set()
    pcs = set()
    region_blocks: Dict[int, set] = {}
    instructions = 0
    for access in trace:
        block = access.address >> 6
        region = access.address // region_size
        blocks.add(block)
        pcs.add(access.pc)
        region_blocks.setdefault(region, set()).add(block)
        instructions += access.instr_gap + 1
    blocks_per_region = region_size // 64
    densities = [len(v) / blocks_per_region for v in region_blocks.values()]
    return {
        "accesses": float(len(trace)),
        "instructions": float(instructions),
        "distinct_blocks": float(len(blocks)),
        "distinct_regions": float(len(region_blocks)),
        "distinct_pcs": float(len(pcs)),
        "mean_region_density": sum(densities) / len(densities),
    }
