"""Trace specifications, construction, persistence and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.hashing import content_hash
from repro.sim.types import MemoryAccess
from repro.workloads import formats as trace_formats
from repro.workloads.formats import (
    TraceFile,
    TraceFormatError,
    slice_accesses,
)

#: (path, digest) pairs already verified in this process, so streaming jobs
#: hash each trace file at most once per process.
_VERIFIED_SOURCES: set = set()


@dataclass(frozen=True)
class TraceSource:
    """Reference to an on-disk trace file backing a :class:`TraceSpec`.

    Attributes:
        path: filesystem location of the trace file.
        format: trace format name (see :data:`repro.workloads.formats.FORMATS`).
        digest: SHA-256 of the raw file bytes.  Identity is *content-based*:
            two sources with equal format and digest are the same trace
            regardless of path, and engine cache keys fold in only
            ``(format, digest)`` so results stay deterministic across file
            moves and hosts.
    """

    path: str
    format: str
    digest: str

    @classmethod
    def from_path(cls, path, format: Optional[str] = None) -> "TraceSource":
        """Build a source for an existing file, sniffing format and hashing."""
        fmt = (
            trace_formats.resolve_format(format)
            if format is not None
            else trace_formats.sniff_format(path)
        )
        return cls(
            path=str(path), format=fmt.name, digest=trace_formats.file_digest(path)
        )

    def to_dict(self) -> Dict[str, str]:
        """Plain-data representation (path included, for reconstruction)."""
        return {"path": self.path, "format": self.format, "digest": self.digest}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "TraceSource":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            path=data["path"], format=data["format"], digest=data["digest"]
        )

    def fingerprint(self) -> Dict[str, str]:
        """The content-identity part (no path) folded into cache keys."""
        return {"format": self.format, "digest": self.digest}

    def open(self, verify: bool = True) -> TraceFile:
        """Open a re-openable streaming handle onto the file.

        With ``verify`` (the default), the file's digest is checked against
        the recorded one — once per process per (path, digest) — so a file
        edited after the spec was built cannot silently serve results under
        the stale cache key.
        """
        handle = TraceFile(self.path, format=self.format)
        if verify:
            key = (self.path, self.digest)
            if key not in _VERIFIED_SOURCES:
                actual = handle.digest()
                if actual != self.digest:
                    raise TraceFormatError(
                        f"trace file {self.path} changed on disk: digest "
                        f"{actual[:12]}… does not match the recorded "
                        f"{self.digest[:12]}…"
                    )
                _VERIFIED_SOURCES.add(key)
        return handle


@dataclass(frozen=True)
class TraceSpec:
    """Declarative description of one trace (generated or file-backed).

    Attributes:
        name: trace name used in reports (mirrors the paper's trace naming,
            e.g. ``"bwaves_s-like"``).
        suite: benchmark suite the trace belongs to (``"spec17"``, ``"ligra"``,
            ...).
        generator: key into :data:`repro.workloads.generators.GENERATORS`
            (ignored when ``source`` is set).
        params: keyword arguments forwarded to the generator constructor.
        seed: RNG seed (kept separate from params so sweeps can vary it).
        length: number of memory accesses to generate (or, for file-backed
            specs, to take from the start of the file).
        source: optional :class:`TraceSource` file reference; when set the
            trace streams from disk instead of being generated.
    """

    name: str
    suite: str
    generator: str
    params: Dict[str, object] = field(default_factory=dict)
    seed: int = 0
    length: int = 40_000
    source: Optional[TraceSource] = None

    def to_dict(self) -> Dict[str, object]:
        """Deterministic plain-data representation (params key-sorted).

        The ``source`` key is present only for file-backed specs, so
        serialized generator specs are byte-identical to those produced
        before file sources existed (stable engine cache keys).
        """
        data = {
            "name": self.name,
            "suite": self.suite,
            "generator": self.generator,
            "params": {key: self.params[key] for key in sorted(self.params)},
            "seed": self.seed,
            "length": self.length,
        }
        if self.source is not None:
            data["source"] = self.source.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceSpec":
        """Rebuild a :class:`TraceSpec` from :meth:`to_dict` output."""
        source = data.get("source")
        return cls(
            name=data["name"],
            suite=data["suite"],
            generator=data["generator"],
            params=dict(data.get("params", {})),
            seed=data.get("seed", 0),
            length=data.get("length", 40_000),
            source=TraceSource.from_dict(source) if source else None,
        )

    @classmethod
    def from_file(
        cls,
        path,
        name: Optional[str] = None,
        suite: str = "file",
        format: Optional[str] = None,
        length: Optional[int] = None,
    ) -> "TraceSpec":
        """Describe an on-disk trace file as a spec.

        ``length`` defaults to the file's record count (one streaming pass
        to count), so ``build()``/``stream()`` cover the whole file.
        """
        source = TraceSource.from_path(path, format=format)
        if length is None:
            length = sum(1 for _ in trace_formats.read_trace_stream(
                path, format=source.format
            ))
        return cls(
            name=name if name is not None else Path(path).name,
            suite=suite,
            generator="file",
            seed=0,
            length=length,
            source=source,
        )

    def identity_dict(self) -> Dict[str, object]:
        """Plain-data *content identity*: what the trace contains, not where.

        Like :meth:`to_dict` except a file source contributes only its
        ``(format, digest)`` fingerprint, never its path.  This is the form
        cache keys must hash (:meth:`content_key` and the experiment
        engine's job keys) so results survive file moves and host changes.
        """
        data = self.to_dict()
        if self.source is not None:
            data["source"] = self.source.fingerprint()
        return data

    def content_key(self) -> str:
        """Stable hash of everything that determines the trace contents.

        Generators are seed-deterministic, so two specs with the same
        content key produce byte-identical traces in any process.  For
        file-backed specs the key covers the file's *content digest* (not
        its path), so moving or copying a trace file never changes keys.
        """
        return content_hash(self.identity_dict())

    def build(self, length: Optional[int] = None) -> List[MemoryAccess]:
        """Materialize the trace as a list (generated or loaded from file)."""
        return list(self.stream(length=length))

    def stream(self, length: Optional[int] = None) -> Iterator[MemoryAccess]:
        """Yield the trace's accesses lazily.

        For file-backed specs this streams straight off disk in O(1)
        memory; generator specs materialize first (generators are batch
        producers), so prefer :meth:`replayable` when the consumer can
        handle both shapes.
        """
        length = length if length is not None else self.length
        if self.source is not None:
            return slice_accesses(iter(self.source.open()), 0, length)
        return iter(self._generate(length))

    def batched(self, length: Optional[int] = None):
        """The trace decoded into parallel arrays for the batched kernel.

        Returns a :class:`repro.sim.batch.BatchedTrace`.  File-backed specs
        decode in one streaming pass (the arrays hold the whole trace, so
        this trades the O(1) memory of :meth:`replayable` for the batched
        kernel's throughput); generator specs decode the generated list.
        """
        from repro.sim.batch import BatchedTrace

        length = length if length is not None else self.length
        if self.source is not None:
            return BatchedTrace.from_accesses(self.stream(length=length))
        return BatchedTrace.from_accesses(self._generate(length))

    def replayable(self, length: Optional[int] = None):
        """The trace as a replayer-friendly source.

        File-backed specs return a re-openable
        :class:`~repro.workloads.formats.TraceFile` (sliced to ``length``)
        that the simulator streams in O(1) memory; generator specs return
        the materialized list.
        """
        length = length if length is not None else self.length
        if self.source is not None:
            return self.source.open().with_transforms(
                lambda accesses: slice_accesses(accesses, 0, length)
            )
        return self._generate(length)

    def _generate(self, length: int) -> List[MemoryAccess]:
        """Run the configured generator (generator-backed specs only)."""
        from repro.workloads.generators import GENERATORS

        if self.generator not in GENERATORS:
            raise KeyError(f"unknown generator {self.generator!r}")
        generator_cls = GENERATORS[self.generator]
        generator = generator_cls(
            seed=self.seed,
            length=length,
            **self.params,
        )
        return generator.generate()


def make_trace(
    kind: Union[str, TraceSpec],
    seed: int = 0,
    length: int = 40_000,
    **params,
) -> List[MemoryAccess]:
    """Build a trace either from a :class:`TraceSpec` or a generator name.

    When ``kind`` is a :class:`TraceSpec`, the spec's own length and
    parameters are used verbatim.
    """
    if isinstance(kind, TraceSpec):
        return kind.build()
    spec = TraceSpec(
        name=f"{kind}-{seed}",
        suite="adhoc",
        generator=kind,
        params=params,
        seed=seed,
        length=length,
    )
    return spec.build()


# --------------------------------------------------------------------------- #
# Persistence (delegates to the repro.workloads.formats subsystem)
# --------------------------------------------------------------------------- #
def _legacy_default_format(path: Union[str, Path]) -> Optional[str]:
    """Format name for paths whose suffix selects nothing: JSON lines.

    Earlier versions always wrote JSON lines whatever the suffix, so the
    compatibility wrappers below keep that default instead of the format
    registry's native default.
    """
    suffix = trace_formats.strip_compression_suffix(path).suffix.lower()
    for fmt in trace_formats.FORMATS.values():
        if suffix in fmt.suffixes:
            return fmt.name
    return "jsonl"


def save_trace(
    trace: Sequence[MemoryAccess],
    path: Union[str, Path],
    format: Optional[str] = None,
    compression: str = "auto",
) -> int:
    """Write a trace to disk; returns the number of records written.

    The format follows the path suffix (``.gzt`` native binary,
    ``.champsim`` ChampSim records, ``.jsonl`` JSON lines — optionally
    ``.gz``/``.xz`` compressed), defaulting to JSON lines for unknown
    suffixes as earlier versions did.  Unrepresentable records raise
    :class:`~repro.workloads.formats.TraceFormatError`.
    """
    return trace_formats.save_trace_file(
        trace,
        path,
        format=format if format is not None else _legacy_default_format(path),
        compression=compression,
    )


def load_trace(
    path: Union[str, Path], format: Optional[str] = None
) -> List[MemoryAccess]:
    """Read a trace file written in any supported format.

    The format is sniffed from the suffix, then the contents.  Truncated or
    corrupt files raise the typed
    :class:`~repro.workloads.formats.TraceFormatError` instead of leaking
    ``KeyError``/``struct.error`` from codec internals.
    """
    return trace_formats.load_trace_file(path, format=format)


def stream_trace(
    path: Union[str, Path], format: Optional[str] = None
) -> Iterator[MemoryAccess]:
    """Lazily yield the accesses stored at ``path`` (O(1) memory)."""
    return trace_formats.read_trace_stream(path, format=format)


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #
def trace_statistics(
    trace: Union[Sequence[MemoryAccess], Iterator[MemoryAccess]],
    region_size: int = 4096,
) -> Dict[str, float]:
    """Summarise a trace: distinct blocks/regions/PCs, density, footprint size.

    Accepts any iterable (including streaming readers) and consumes it in
    one pass.  Useful for sanity-checking that a generator produces the
    access-pattern characteristics it advertises (tests rely on this).
    """
    blocks = set()
    pcs = set()
    region_blocks: Dict[int, set] = {}
    instructions = 0
    accesses = 0
    for access in trace:
        block = access.address >> 6
        region = access.address // region_size
        blocks.add(block)
        pcs.add(access.pc)
        region_blocks.setdefault(region, set()).add(block)
        instructions += access.instr_gap + 1
        accesses += 1
    if accesses == 0:
        return {
            "accesses": 0,
            "instructions": 0,
            "distinct_blocks": 0,
            "distinct_regions": 0,
            "distinct_pcs": 0,
            "mean_region_density": 0.0,
        }
    blocks_per_region = region_size // 64
    densities = [len(v) / blocks_per_region for v in region_blocks.values()]
    return {
        "accesses": float(accesses),
        "instructions": float(instructions),
        "distinct_blocks": float(len(blocks)),
        "distinct_regions": float(len(region_blocks)),
        "distinct_pcs": float(len(pcs)),
        "mean_region_density": sum(densities) / len(densities),
    }
