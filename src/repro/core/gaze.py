"""The Gaze spatial prefetcher (paper §III, Fig. 3).

Gaze is trained on L1D demand loads.  The access flow follows Fig. 3b:

1. A load to a region already tracked by the Accumulation Table (AT) simply
   updates the footprint -- plus, if the region carries the ``stride_flag``,
   the region-local stride logic may *promote* upcoming blocks into the L1D
   (stage 2 of the streaming enhancement, which doubles as the backup
   prefetcher for regions whose strict PHT match failed).
2. A load to a region held by the Filter Table (FT) is the region's second
   access: the region moves to the AT and the Pattern History Module is
   consulted with the (trigger offset, second offset, trigger PC) triple:

   * *streaming case* (trigger = 0, second = 1): the Dense PC Table and the
     Dense Counter decide the stage-1 aggressiveness -- head of the region
     to the L1D and the rest to the L2C when confidence is high, head to
     the L2C only when moderate, nothing otherwise;
   * *normal case*: the PHT is searched with the trigger offset as index and
     the second offset as tag (strict matching); a hit prefetches the whole
     learned footprint into the L1D, a miss sets the stride flag so the
     backup prefetcher can still capture easy-to-follow patterns.
3. A load to an unknown region allocates an FT entry.
4. When an AT entry is evicted, the accumulated footprint is learned: dense
   streaming-candidate regions train the DPCT/DC, everything else trains
   the PHT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.accumulation_table import GazeAccumulationTable, GazeRegionEntry
from repro.core.dense_tracker import StreamingConfidence, StreamingModule
from repro.core.filter_table import GazeFilterTable
from repro.core.pattern_history import GazePatternHistoryTable
from repro.core.prefetch_buffer import GazePrefetchBuffer
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import footprint_to_offsets
from repro.sim.types import (
    AccessResult,
    PrefetchHint,
    PrefetchRequest,
    RegionGeometry,
)


@dataclass(frozen=True)
class GazeConfig:
    """Tunable parameters of Gaze (defaults match the paper's Table I)."""

    region_size: int = 4096
    filter_entries: int = 64
    accumulation_entries: int = 64
    pht_entries: int = 256
    pht_ways: int = 4
    prefetch_buffer_entries: int = 32
    dpct_entries: int = 8
    dense_counter_bits: int = 3
    #: Number of head blocks given the more aggressive treatment in stage 1
    #: (one quarter of a 4 KB region).
    streaming_head_blocks: int = 16
    #: Stage-2 promotion: number of blocks promoted ahead of the access.
    promotion_degree: int = 4
    #: Stage-2 promotion: blocks skipped immediately ahead of the access.
    promotion_skip: int = 2
    #: Maximum prefetch requests the PB releases per triggering access
    #: (smooths whole-region patterns over several accesses).
    pb_issue_per_access: int = 16
    #: Enable the dedicated streaming module (DPCT/DC two-stage control).
    enable_streaming_module: bool = True
    #: Enable the region-local stride backup for PHT misses.
    enable_stride_backup: bool = True
    #: Enable the normal-case PHT path (disabled by the streaming-only
    #: ablations of Fig. 10).
    enable_pht: bool = True

    @property
    def blocks_per_region(self) -> int:
        """Number of 64-byte blocks per region."""
        return self.region_size // 64


class GazePrefetcher(Prefetcher):
    """Gaze: footprint-internal temporal correlation based spatial prefetcher."""

    name = "gaze"

    def __init__(self, config: Optional[GazeConfig] = None) -> None:
        self.config = config if config is not None else GazeConfig()
        blocks = self.config.blocks_per_region
        self.filter_table = GazeFilterTable(entries=self.config.filter_entries)
        self.accumulation_table = GazeAccumulationTable(
            entries=self.config.accumulation_entries, blocks_per_region=blocks
        )
        self.pht = GazePatternHistoryTable(
            entries=self.config.pht_entries,
            ways=self.config.pht_ways,
            blocks_per_region=blocks,
        )
        self.streaming = StreamingModule(
            dpct_entries=self.config.dpct_entries,
            dc_bits=self.config.dense_counter_bits,
        )
        self.prefetch_buffer = GazePrefetchBuffer(
            entries=self.config.prefetch_buffer_entries, blocks_per_region=blocks
        )
        # Precomputed shift/mask address decomposition for the hot path.
        self._geometry = RegionGeometry(self.config.region_size)
        # Hot-path bindings: train() runs once per demand load and its
        # common cases (tracked region / known-region second access / new
        # region) are one ordered-dict operation each — going through the
        # LRUTable wrappers costs three call layers per access.  The
        # underlying OrderedDicts are stable objects (``clear`` empties
        # them in place), so binding them once is safe.
        self._split = self._geometry.split
        self._at_entries = self.accumulation_table._table._entries
        self._ft_entries = self.filter_table._table._entries
        self._pb_entries = self.prefetch_buffer._table._entries
        self._stride_backup = self.config.enable_stride_backup
        # Stage-1 offset lists are the same for every activation; build the
        # head/tail split once.
        head = min(self.config.streaming_head_blocks, blocks)
        self._stage1_head = tuple(range(head))
        self._stage1_tail = tuple(range(head, blocks))
        # Introspection counters used by the analysis figures/tests.
        self.pht_predictions = 0
        self.streaming_predictions = 0
        self.backup_activations = 0
        self.promotions = 0

    # ------------------------------------------------------------------ #
    # Main training entry point
    # ------------------------------------------------------------------ #
    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        region, offset = self._split(address)

        # Tracked region: inlined AT lookup (dict get + LRU re-order), then
        # the PB's nothing-pending fast path inlined the same way — the
        # overwhelmingly common outcome is "no requests".
        at_entries = self._at_entries
        at_entry = at_entries.get(region)
        if at_entry is not None:
            at_entries.move_to_end(region)
            if at_entry.stride_flag and self._stride_backup:
                self._handle_tracked_access(at_entry, offset)
            # Inlined GazeRegionEntry.record (runs on every tracked access).
            at_entry.footprint |= 1 << offset
            if offset != at_entry.last_offset:
                at_entry.penultimate_offset = at_entry.last_offset
                at_entry.last_offset = offset
            at_entry.access_count += 1
            pb_entries = self._pb_entries
            pb_entry = pb_entries.get(region)
            if pb_entry is None:
                return []
            pb_entries.move_to_end(region)
            if pb_entry.pending == 0:
                return []
            return self.prefetch_buffer.pop_requests(
                region,
                self.config.region_size,
                pc=pc,
                metadata="gaze-promo",
                limit=self.config.pb_issue_per_access,
            )

        ft_entries = self._ft_entries
        ft_entry = ft_entries.get(region)
        if ft_entry is not None:
            ft_entries.move_to_end(region)
            if ft_entry.trigger_offset == offset:
                return []
            del ft_entries[region]
            return self._activate_region(region, ft_entry, offset, pc)

        self.filter_table.insert(region, trigger_pc=pc, trigger_offset=offset)
        return []

    # ------------------------------------------------------------------ #
    # Region activation (second access): PHM consultation
    # ------------------------------------------------------------------ #
    def _activate_region(
        self, region: int, ft_entry, second_offset: int, second_pc: int
    ) -> List[PrefetchRequest]:
        trigger_offset = ft_entry.trigger_offset
        trigger_pc = ft_entry.trigger_pc
        stride_flag = False
        blocks = self.config.blocks_per_region

        if self._is_streaming_candidate(trigger_offset, second_offset):
            if self.config.enable_streaming_module:
                stride_flag = True
                confidence = self.streaming.confidence(trigger_pc)
                self._apply_stage1(region, confidence, trigger_offset, second_offset)
                if confidence is not StreamingConfidence.NONE:
                    self.streaming_predictions += 1
            elif self.config.enable_pht:
                stride_flag = not self._predict_with_pht(
                    region, trigger_offset, second_offset
                )
            else:
                stride_flag = True
        elif self.config.enable_pht:
            matched = self._predict_with_pht(region, trigger_offset, second_offset)
            stride_flag = not matched and self.config.enable_stride_backup
        else:
            stride_flag = self.config.enable_stride_backup

        _entry, evicted = self.accumulation_table.insert(
            region,
            trigger_pc=trigger_pc,
            trigger_offset=trigger_offset,
            second_offset=second_offset,
            stride_flag=stride_flag,
        )
        if evicted is not None:
            self._learn(evicted)

        return self.prefetch_buffer.pop_requests(
            region,
            self.config.region_size,
            pc=trigger_pc,
            metadata="gaze",
            limit=self.config.pb_issue_per_access,
        )

    def _is_streaming_candidate(self, trigger_offset: int, second_offset: int) -> bool:
        return trigger_offset == 0 and second_offset == 1

    def _predict_with_pht(
        self, region: int, trigger_offset: int, second_offset: int
    ) -> bool:
        footprint = self.pht.predict(trigger_offset, second_offset)
        if footprint is None:
            return False
        self.pht_predictions += 1
        offsets = footprint_to_offsets(footprint, self.config.blocks_per_region)
        self.prefetch_buffer.add_pattern(
            region,
            offsets_to_l1=offsets,
            exclude_offsets=(trigger_offset, second_offset),
        )
        return True

    def _apply_stage1(
        self,
        region: int,
        confidence: StreamingConfidence,
        trigger_offset: int,
        second_offset: int,
    ) -> None:
        if confidence is StreamingConfidence.HIGH:
            self.prefetch_buffer.add_pattern(
                region,
                offsets_to_l1=self._stage1_head,
                offsets_to_l2=self._stage1_tail,
                exclude_offsets=(trigger_offset, second_offset),
            )
        elif confidence is StreamingConfidence.MODERATE:
            self.prefetch_buffer.add_pattern(
                region,
                offsets_to_l1=(),
                offsets_to_l2=self._stage1_head,
                exclude_offsets=(trigger_offset, second_offset),
            )
        # StreamingConfidence.NONE: no stage-1 prefetch; the stride flag set
        # by the caller lets stage 2 catch up if streaming materialises.

    # ------------------------------------------------------------------ #
    # Tracked-region accesses: stage-2 promotion / stride backup
    # ------------------------------------------------------------------ #
    def _handle_tracked_access(self, entry: GazeRegionEntry, offset: int) -> None:
        if not entry.stride_flag or not self.config.enable_stride_backup:
            return
        strides = entry.strides_with(offset)
        if strides is None:
            return
        first, second = strides
        if first != second or first == 0:
            return
        stride = first
        blocks = self.config.blocks_per_region
        skip = self.config.promotion_skip
        degree = self.config.promotion_degree
        offsets = []
        for step in range(skip + 1, skip + degree + 1):
            target = offset + stride * step
            if 0 <= target < blocks:
                offsets.append(target)
        if not offsets:
            return
        issued = self.prefetch_buffer.promote(entry.region, offsets)
        if issued:
            self.promotions += 1
            if not entry.is_fully_dense(blocks):
                self.backup_activations += 1

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def _learn(self, entry: GazeRegionEntry) -> None:
        blocks = self.config.blocks_per_region
        streaming_candidate = self._is_streaming_candidate(
            entry.trigger_offset, entry.second_offset
        )
        if streaming_candidate and self.config.enable_streaming_module:
            self.streaming.learn(
                entry.trigger_pc, fully_dense=entry.is_fully_dense(blocks)
            )
            return
        if self.config.enable_pht:
            self.pht.learn(entry.trigger_offset, entry.second_offset, entry.footprint)

    def on_cache_eviction(self, block: int) -> None:
        """Deactivate the block's region when one of its lines leaves the L1D.

        This is the second deactivation trigger the paper describes (besides
        LRU eviction from the AT) and is what keeps learning timely when only
        a handful of regions are active concurrently (e.g. pure streaming).
        """
        region = self._geometry.region_of_block(block)
        entry = self.accumulation_table.remove(region)
        if entry is not None:
            self._learn(entry)

    def drain(self) -> None:
        """Deactivate all tracked regions (learns their footprints)."""
        for entry in self.accumulation_table.drain():
            self._learn(entry)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    def storage_bits(self) -> int:
        """Total metadata storage (Table I: ~4.46 KB for the default config)."""
        return (
            self.filter_table.storage_bits()
            + self.accumulation_table.storage_bits()
            + self.pht.storage_bits()
            + self.streaming.storage_bits()
            + self.prefetch_buffer.storage_bits()
        )

    def reset(self) -> None:
        """Clear all internal state."""
        self.filter_table.reset()
        self.accumulation_table.reset()
        self.pht.reset()
        self.streaming.reset()
        self.prefetch_buffer.reset()
        self.pht_predictions = 0
        self.streaming_predictions = 0
        self.backup_activations = 0
        self.promotions = 0
