"""Gaze's Filter Table (FT).

The FT holds regions that have been touched exactly once.  Its purpose is to
keep one-bit footprints out of the Pattern History Table: a region is only
promoted to the Accumulation Table -- and prefetching only considered --
once a *second*, different block of the region is demanded.  At that moment
the FT entry supplies the trigger PC and trigger offset that, together with
the second offset, form Gaze's characterization event.

Hardware budget (Table I): 8-way, 64 entries, each storing a 36-bit region
tag, 3-bit LRU state, a 12-bit hashed PC and a 6-bit trigger offset -- 456 B
total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.prefetchers.tables import LRUTable


@dataclass(slots=True)
class FilterEntry:
    """One region awaiting its second access."""

    region: int
    trigger_pc: int
    trigger_offset: int


class GazeFilterTable:
    """64-entry LRU filter table."""

    #: Table I storage accounting (bits per entry).
    REGION_TAG_BITS = 36
    LRU_BITS = 3
    HASHED_PC_BITS = 12
    OFFSET_BITS = 6

    def __init__(self, entries: int = 64) -> None:
        self.entries = entries
        self._table: LRUTable[int, FilterEntry] = LRUTable(entries)

    def lookup(self, region: int) -> Optional[FilterEntry]:
        """Return the entry for ``region``, refreshing its LRU position."""
        return self._table.get(region)

    def insert(self, region: int, trigger_pc: int, trigger_offset: int) -> None:
        """Record the first access to ``region``."""
        self._table.put(
            region,
            FilterEntry(
                region=region, trigger_pc=trigger_pc, trigger_offset=trigger_offset
            ),
        )

    def remove(self, region: int) -> Optional[FilterEntry]:
        """Remove and return the entry for ``region`` (promotion to the AT)."""
        return self._table.pop(region)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, region: int) -> bool:
        return region in self._table

    def storage_bits(self) -> int:
        """Total storage of the FT in bits (Table I: 456 B)."""
        per_entry = (
            self.REGION_TAG_BITS + self.LRU_BITS + self.HASHED_PC_BITS + self.OFFSET_BITS
        )
        return self.entries * per_entry

    def reset(self) -> None:
        """Clear all entries."""
        self._table.clear()
