"""Gaze ablations and the context-characterization strawmen of the paper.

These variants power the analysis figures:

* **Fig. 1 / Fig. 9** -- :class:`ContextCharacterizationPrefetcher` realises
  the plain context-based characterization schemes (``Offset``, ``PC``,
  ``PC+Address``); their "-opt" counterparts are PMP, DSPatch and Bingo from
  :mod:`repro.prefetchers`.  :class:`GazePHTOnly` is the "Gaze-PHT" curve
  (two-access characterization without the streaming module).
* **Fig. 4** -- :class:`NInitialAccessGaze` generalises the characterization
  event to the first *N* aligned accesses (N = 1..4).
* **Fig. 10** -- :class:`StreamingOnlyGaze` restricts prefetching to
  streaming-candidate regions and chooses between the PHT (``PHT4SS``) and
  the dedicated streaming module (``SM4SS``).
* **Fig. 18** -- :class:`VirtualGaze` runs Gaze at larger (virtual) region
  sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.gaze import GazeConfig, GazePrefetcher
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.spatial_common import (
    RegionTracker,
    footprint_to_offsets,
    pattern_to_requests,
)
from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    AccessResult,
    PrefetchHint,
    PrefetchRequest,
    address_from_region_offset,
    block_offset_in_region,
    region_number,
)


# --------------------------------------------------------------------------- #
# Plain context-based characterization schemes (Fig. 1)
# --------------------------------------------------------------------------- #
class ContextCharacterizationPrefetcher(Prefetcher):
    """Spatial-pattern prefetcher characterised by an environmental context.

    ``scheme`` selects the characterization event extracted from the trigger
    access:

    * ``"offset"``   -- the trigger offset alone (64 possible events);
    * ``"pc"``       -- the (hashed) trigger PC;
    * ``"pc+offset"`` -- trigger PC and trigger offset;
    * ``"pc+addr"``  -- trigger PC and trigger address (region + offset).

    Prefetching is awakened by the trigger access, exactly like the
    conventional designs the paper contrasts Gaze with.
    """

    SCHEMES = ("offset", "pc", "pc+offset", "pc+addr")

    def __init__(
        self,
        scheme: str = "offset",
        region_size: int = 4096,
        table_entries: Optional[int] = None,
    ) -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown characterization scheme: {scheme!r}")
        self.scheme = scheme
        self.name = f"ctx-{scheme}"
        self.region_size = region_size
        self.blocks = region_size // 64
        if table_entries is None:
            table_entries = self.blocks if scheme == "offset" else 4096
        self.tracker = RegionTracker(
            region_size=region_size, filter_entries=64, accumulation_entries=64
        )
        self.pht: LRUTable[Tuple, int] = LRUTable(table_entries)

    def _event(self, pc: int, region: int, offset: int) -> Tuple:
        if self.scheme == "offset":
            return (offset,)
        if self.scheme == "pc":
            return (pc & 0xFFFF,)
        if self.scheme == "pc+offset":
            return (pc & 0xFFFF, offset)
        return (pc & 0xFFFF, region, offset)

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        trigger, _activation, deactivations, _entry = self.tracker.observe(pc, address)

        for event in deactivations:
            key = self._event(event.trigger_pc, event.region, event.trigger_offset)
            self.pht.put(key, event.footprint)

        if trigger is None:
            return []
        footprint = self.pht.get(
            self._event(trigger.pc, trigger.region, trigger.offset)
        )
        if footprint is None:
            return []
        return pattern_to_requests(
            region=trigger.region,
            footprint=footprint,
            region_size=self.region_size,
            hint=PrefetchHint.L1,
            exclude_offsets=(trigger.offset,),
            pc=trigger.pc,
            metadata=self.name,
        )

    def on_cache_eviction(self, block: int) -> None:
        event = self.tracker.on_block_eviction(block)
        if event is not None:
            key = self._event(event.trigger_pc, event.region, event.trigger_offset)
            self.pht.put(key, event.footprint)

    def storage_bits(self) -> int:
        tag_bits = {"offset": 6, "pc": 12, "pc+offset": 18, "pc+addr": 48}[self.scheme]
        pht = self.pht.capacity * (tag_bits + 2 + self.blocks)
        tracker = 128 * (36 + 3 + 12 + 6 + self.blocks)
        return pht + tracker

    def reset(self) -> None:
        self.tracker.reset()
        self.pht.clear()


class OffsetOnlyPrefetcher(ContextCharacterizationPrefetcher):
    """Trigger-offset-only characterization (the "Offset" curve)."""

    def __init__(self, region_size: int = 4096) -> None:
        super().__init__(scheme="offset", region_size=region_size)
        self.name = "offset"


class PCOnlyPrefetcher(ContextCharacterizationPrefetcher):
    """Trigger-PC-only characterization (the "PC" curve)."""

    def __init__(self, region_size: int = 4096) -> None:
        super().__init__(scheme="pc", region_size=region_size, table_entries=256)
        self.name = "pc"


class PCAddressPrefetcher(ContextCharacterizationPrefetcher):
    """PC+Address characterization (the "PC+Addr" curve, SMS-like cost)."""

    def __init__(self, region_size: int = 4096) -> None:
        super().__init__(scheme="pc+addr", region_size=region_size, table_entries=16384)
        self.name = "pc+addr"


# --------------------------------------------------------------------------- #
# Gaze ablations
# --------------------------------------------------------------------------- #
class GazePHTOnly(GazePrefetcher):
    """Gaze's two-access characterization without the streaming module.

    This is the "Gaze-PHT" configuration of Fig. 9: streaming-candidate
    regions are treated like any other region (their dense footprints go
    through the PHT), and neither the two-stage aggressiveness control nor
    the stride backup is active.
    """

    name = "gaze-pht"

    def __init__(self, region_size: int = 4096, pht_entries: int = 256) -> None:
        super().__init__(
            GazeConfig(
                region_size=region_size,
                pht_entries=pht_entries,
                enable_streaming_module=False,
                enable_stride_backup=False,
            )
        )


class VirtualGaze(GazePrefetcher):
    """vGaze: Gaze operating on virtual addresses with a larger region size.

    Because virtual addresses are visible at the L1D, Gaze can track regions
    larger than a physical page without architectural support (Fig. 18).
    """

    def __init__(self, region_size: int = 4096, pht_entries: int = 256) -> None:
        super().__init__(
            GazeConfig(region_size=region_size, pht_entries=pht_entries)
        )
        self.name = f"vgaze-{region_size // 1024}kb"


class StreamingOnlyGaze(GazePrefetcher):
    """Fig. 10 ablations: prefetch only in streaming-candidate regions.

    ``use_streaming_module=False`` is **PHT4SS** (the dense pattern is learned
    and replayed through the PHT); ``True`` is **SM4SS** (the dedicated
    DPCT/DC module handles it).  Non-streaming regions are tracked for
    learning but never trigger prefetches.
    """

    def __init__(self, use_streaming_module: bool, region_size: int = 4096) -> None:
        super().__init__(
            GazeConfig(
                region_size=region_size,
                enable_streaming_module=use_streaming_module,
                enable_pht=True,
                enable_stride_backup=use_streaming_module,
            )
        )
        self.use_streaming_module = use_streaming_module
        self.name = "sm4ss" if use_streaming_module else "pht4ss"

    def _activate_region(self, region, ft_entry, second_offset, second_pc):
        if not self._is_streaming_candidate(ft_entry.trigger_offset, second_offset):
            # Track (and learn) the region but never awaken prefetching.
            _entry, evicted = self.accumulation_table.insert(
                region,
                trigger_pc=ft_entry.trigger_pc,
                trigger_offset=ft_entry.trigger_offset,
                second_offset=second_offset,
                stride_flag=False,
            )
            if evicted is not None:
                self._learn(evicted)
            return []
        if self.use_streaming_module:
            return super()._activate_region(region, ft_entry, second_offset, second_pc)
        # PHT4SS: use the PHT even for the streaming case.
        trigger_offset = ft_entry.trigger_offset
        matched = self._predict_with_pht(region, trigger_offset, second_offset)
        _entry, evicted = self.accumulation_table.insert(
            region,
            trigger_pc=ft_entry.trigger_pc,
            trigger_offset=trigger_offset,
            second_offset=second_offset,
            stride_flag=False,
        )
        if evicted is not None:
            self._learn(evicted)
        return self.prefetch_buffer.pop_requests(
            region, self.config.region_size, pc=ft_entry.trigger_pc, metadata="pht4ss"
        )

    def _learn(self, entry) -> None:
        streaming_candidate = self._is_streaming_candidate(
            entry.trigger_offset, entry.second_offset
        )
        if not streaming_candidate:
            # Still learn normal patterns into the PHT so PHT4SS has material
            # to work with (matches the paper's description: both settings
            # only *operate* in streaming regions).
            self.pht.learn(entry.trigger_offset, entry.second_offset, entry.footprint)
            return
        if self.use_streaming_module:
            self.streaming.learn(
                entry.trigger_pc,
                fully_dense=entry.is_fully_dense(self.config.blocks_per_region),
            )
        else:
            self.pht.learn(entry.trigger_offset, entry.second_offset, entry.footprint)


# --------------------------------------------------------------------------- #
# Fig. 4: number of aligned initial accesses
# --------------------------------------------------------------------------- #
@dataclass
class _PendingRegion:
    """A region waiting to accumulate ``n`` distinct initial offsets."""

    trigger_pc: int
    initial_offsets: List[int] = field(default_factory=list)
    footprint: int = 0

    def record(self, offset: int, n: int) -> bool:
        """Record an access; True once ``n`` distinct offsets are collected."""
        self.footprint |= 1 << offset
        if offset not in self.initial_offsets and len(self.initial_offsets) < n:
            self.initial_offsets.append(offset)
        return len(self.initial_offsets) >= n


class NInitialAccessGaze(Prefetcher):
    """Characterize patterns with the first ``n`` aligned accesses (Fig. 4).

    ``n = 1`` degenerates to the Offset scheme, ``n = 2`` to Gaze-PHT; larger
    ``n`` trades coverage and timeliness for accuracy exactly as the paper's
    exploration shows.  The index event is the ordered concatenation of the
    first ``n`` distinct offsets; the history table is fully associative with
    256 entries (as in the paper's exploration methodology).
    """

    def __init__(
        self,
        n: int = 2,
        region_size: int = 4096,
        table_entries: int = 256,
        tracked_regions: int = 64,
    ) -> None:
        if not 1 <= n <= 8:
            raise ValueError("n must be between 1 and 8")
        self.n = n
        self.name = f"gaze-n{n}"
        self.region_size = region_size
        self.blocks = region_size // 64
        self.pht: LRUTable[Tuple[int, ...], int] = LRUTable(table_entries)
        self.pending: LRUTable[int, _PendingRegion] = LRUTable(tracked_regions)

    def train(
        self, pc: int, address: int, cycle: int, result: Optional[AccessResult] = None
    ) -> List[PrefetchRequest]:
        region = region_number(address, self.region_size)
        offset = block_offset_in_region(address, self.region_size)

        entry = self.pending.get(region)
        if entry is None:
            entry = _PendingRegion(trigger_pc=pc)
            evicted = self.pending.put(region, entry)
            if evicted is not None:
                self._learn(evicted[1])
        already_ready = len(entry.initial_offsets) >= self.n
        ready = entry.record(offset, self.n)

        if ready and not already_ready:
            key = tuple(entry.initial_offsets)
            footprint = self.pht.get(key)
            if footprint is None:
                return []
            return pattern_to_requests(
                region=region,
                footprint=footprint,
                region_size=self.region_size,
                hint=PrefetchHint.L1,
                exclude_offsets=entry.initial_offsets,
                pc=pc,
                metadata=self.name,
            )
        return []

    def _learn(self, entry: _PendingRegion) -> None:
        if len(entry.initial_offsets) < self.n:
            return
        self.pht.put(tuple(entry.initial_offsets), entry.footprint)

    def on_cache_eviction(self, block: int) -> None:
        region = (block * 64) // self.region_size
        entry = self.pending.pop(region)
        if entry is not None:
            self._learn(entry)

    def drain(self) -> None:
        """Learn every pending region (end-of-run)."""
        for _region, entry in list(self.pending.items()):
            self._learn(entry)
        self.pending.clear()

    def storage_bits(self) -> int:
        event_bits = 6 * self.n
        pht = self.pht.capacity * (event_bits + 2 + self.blocks)
        tracker = self.pending.capacity * (36 + 3 + 12 + event_bits + self.blocks)
        return pht + tracker

    def reset(self) -> None:
        self.pht.clear()
        self.pending.clear()
