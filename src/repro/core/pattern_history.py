"""Gaze's Pattern History Table (PHT).

The PHT stores learned footprints indexed by the **trigger offset** and
tagged with the **second offset**.  This is the mechanism by which Gaze
folds the footprint-internal temporal correlation into the experience
search *without any extra metadata*: the order of the first two accesses is
inherently verified by the (index, tag) lookup -- a region whose first two
offsets are (a, b) never matches a pattern learned from a region whose
first two offsets were (b, a).

Gaze's *strict matching* rule is implemented here: a prediction is produced
only when both the index and the tag match; there is no partial-match
fallback (unlike Bingo/TAGE).

Hardware budget (Table I): 4-way, 256 entries, each storing a 6-bit tag, a
2-bit LRU field and the 64-bit footprint -- 2304 B total.
"""

from __future__ import annotations

from typing import Optional

from repro.prefetchers.tables import SetAssociativeTable


class GazePatternHistoryTable:
    """Trigger-offset indexed, second-offset tagged footprint store."""

    TAG_BITS = 6
    LRU_BITS = 2

    def __init__(
        self,
        entries: int = 256,
        ways: int = 4,
        blocks_per_region: int = 64,
    ) -> None:
        if entries % ways != 0:
            raise ValueError("PHT entries must be a multiple of the associativity")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.blocks_per_region = blocks_per_region
        self._table: SetAssociativeTable[int] = SetAssociativeTable(
            sets=self.sets, ways=ways
        )
        self.lookups = 0
        self.hits = 0
        self.updates = 0

    # ------------------------------------------------------------------ #
    def _index(self, trigger_offset: int) -> int:
        return trigger_offset % self.sets

    def learn(self, trigger_offset: int, second_offset: int, footprint: int) -> None:
        """Store (or merge into) the pattern for (trigger, second)."""
        self.updates += 1
        index = self._index(trigger_offset)
        existing = self._table.get(index, second_offset, touch=True)
        if existing is not None:
            # Recent footprint wins but blocks seen before are retained for a
            # round, mirroring the single-bit-vector update of the hardware
            # (the new footprint simply overwrites the line).
            self._table.put(index, second_offset, footprint)
        else:
            self._table.put(index, second_offset, footprint)

    def predict(self, trigger_offset: int, second_offset: int) -> Optional[int]:
        """Strictly-matched footprint prediction (None on any mismatch)."""
        self.lookups += 1
        index = self._index(trigger_offset)
        footprint = self._table.get(index, second_offset, touch=True)
        if footprint is not None:
            self.hits += 1
        return footprint

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that found a strictly-matching pattern."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __len__(self) -> int:
        return len(self._table)

    def storage_bits(self) -> int:
        """Total storage of the PHT in bits (Table I: 2304 B)."""
        per_entry = self.TAG_BITS + self.LRU_BITS + self.blocks_per_region
        return self.entries * per_entry

    def reset(self) -> None:
        """Clear all learned patterns and statistics."""
        self._table.clear()
        self.lookups = 0
        self.hits = 0
        self.updates = 0
