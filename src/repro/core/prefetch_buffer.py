"""Gaze's Prefetch Buffer (PB).

A single predicted footprint expands into many prefetch requests that share
the same region number, so Gaze stores *prefetch patterns* per region in a
small buffer: 32 entries, each holding a region tag and a 2-bit state per
block offset (No-Prefetch, Prefetch-to-L1, Prefetch-to-L2; the LLC state is
unused).  Besides compressing storage, the PB is where the stage-2
aggressiveness *promotion* merges into the original pattern: promoting a
block upgrades its state from L2 (or none) to L1, and blocks that were
already issued are not issued again.

Hardware budget (Table I): 8-way, 32 entries, each storing the region tag
(36 b), LRU (3 b) and the 64 x 2 b pattern -- 668 B total.

Hot-path note: :meth:`GazePrefetchBuffer.pop_requests` runs on *every*
access to a tracked region, but almost always finds nothing left to issue.
Each entry therefore carries a ``pending`` count so the empty case returns
immediately after the LRU touch, without walking (or sorting) the states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    PrefetchHint,
    PrefetchRequest,
    address_from_region_offset,
)


class BlockPrefetchState(enum.IntEnum):
    """2-bit per-offset prefetch state stored in the PB."""

    NONE = 0
    TO_L2 = 1
    TO_L1 = 2
    ISSUED = 3


@dataclass(slots=True)
class PrefetchBufferEntry:
    """Prefetch pattern of one region."""

    region: int
    states: Dict[int, BlockPrefetchState] = field(default_factory=dict)
    issued: Dict[int, PrefetchHint] = field(default_factory=dict)
    #: Number of offsets currently in the TO_L1 / TO_L2 states — i.e. how
    #: many requests :meth:`GazePrefetchBuffer.pop_requests` could emit.
    pending: int = 0


class GazePrefetchBuffer:
    """32-entry buffer of per-region prefetch patterns."""

    REGION_TAG_BITS = 36
    LRU_BITS = 3
    STATE_BITS_PER_BLOCK = 2

    def __init__(self, entries: int = 32, blocks_per_region: int = 64) -> None:
        self.entries = entries
        self.blocks_per_region = blocks_per_region
        self._table: LRUTable[int, PrefetchBufferEntry] = LRUTable(entries)

    # ------------------------------------------------------------------ #
    def _entry_for(self, region: int) -> PrefetchBufferEntry:
        entry = self._table.get(region)
        if entry is None:
            entry = PrefetchBufferEntry(region=region)
            self._table.put(region, entry)
        return entry

    def lookup(self, region: int) -> Optional[PrefetchBufferEntry]:
        """Return the PB entry for ``region`` without creating one."""
        return self._table.get(region, touch=False)

    def add_pattern(
        self,
        region: int,
        offsets_to_l1,
        offsets_to_l2=(),
        exclude_offsets=(),
    ) -> None:
        """Merge a prefetch pattern for ``region`` into the buffer.

        Offsets already marked for a more aggressive level keep that level;
        offsets in ``exclude_offsets`` (typically the trigger and second
        offsets, already demanded) are never added.
        """
        entry = self._entry_for(region)
        excluded = frozenset(exclude_offsets)
        states = entry.states
        blocks = self.blocks_per_region
        none_state = BlockPrefetchState.NONE
        pending = entry.pending
        for offset in offsets_to_l2:
            if offset in excluded or not 0 <= offset < blocks:
                continue
            if states.get(offset, none_state) == none_state:
                states[offset] = BlockPrefetchState.TO_L2
                pending += 1
        issued_state = BlockPrefetchState.ISSUED
        to_l1 = BlockPrefetchState.TO_L1
        for offset in offsets_to_l1:
            if offset in excluded or not 0 <= offset < blocks:
                continue
            current = states.get(offset, none_state)
            if current != issued_state:
                states[offset] = to_l1
                if current == none_state:
                    pending += 1
        entry.pending = pending

    def promote(self, region: int, offsets) -> List[int]:
        """Stage-2 promotion: upgrade ``offsets`` to L1.

        Returns the offsets that actually need a (re-)issue: blocks already
        issued to the L1 are skipped, blocks issued only to the L2 are
        re-requested at L1.
        """
        entry = self._entry_for(region)
        states = entry.states
        issued = entry.issued
        blocks = self.blocks_per_region
        needs_issue: List[int] = []
        pending = entry.pending
        for offset in offsets:
            if not 0 <= offset < blocks:
                continue
            if issued.get(offset) is PrefetchHint.L1:
                continue
            previous = states.get(offset, BlockPrefetchState.NONE)
            if previous in (BlockPrefetchState.NONE, BlockPrefetchState.ISSUED):
                pending += 1
            states[offset] = BlockPrefetchState.TO_L1
            needs_issue.append(offset)
        entry.pending = pending
        return needs_issue

    def pop_requests(
        self,
        region: int,
        region_size: int,
        pc: int = 0,
        metadata: str = "",
        limit: Optional[int] = None,
    ) -> List[PrefetchRequest]:
        """Convert the pending pattern of ``region`` into prefetch requests.

        Requests are emitted in ascending block-offset order (the order the
        demand stream will want them) and at most ``limit`` per call, which
        is how the PB smooths the issuance of a whole-region pattern over
        several accesses instead of flooding the prefetch queue.  Pending
        offsets transition to the ISSUED state and are remembered so
        subsequent pattern merges / promotions do not duplicate them.
        """
        entry = self._table.get(region)
        if entry is None or entry.pending == 0:
            return []
        states = entry.states
        requests: List[PrefetchRequest] = []
        issued_state = BlockPrefetchState.ISSUED
        to_l1 = BlockPrefetchState.TO_L1
        l1_hint = PrefetchHint.L1
        l2_hint = PrefetchHint.L2
        none_state = BlockPrefetchState.NONE
        for offset in sorted(states):
            state = states[offset]
            if state is none_state or state is issued_state:
                continue
            hint = l1_hint if state is to_l1 else l2_hint
            requests.append(
                PrefetchRequest(
                    address_from_region_offset(region, offset, region_size),
                    hint,
                    pc,
                    metadata,
                )
            )
            states[offset] = issued_state
            entry.issued[offset] = hint
            entry.pending -= 1
            if limit is not None and len(requests) >= limit:
                break
        return requests

    def __len__(self) -> int:
        return len(self._table)

    def storage_bits(self) -> int:
        """Total storage of the PB in bits (Table I: 668 B)."""
        per_entry = (
            self.REGION_TAG_BITS
            + self.LRU_BITS
            + self.blocks_per_region * self.STATE_BITS_PER_BLOCK
        )
        return self.entries * per_entry

    def reset(self) -> None:
        """Clear all buffered patterns."""
        self._table.clear()
