"""Gaze's Prefetch Buffer (PB).

A single predicted footprint expands into many prefetch requests that share
the same region number, so Gaze stores *prefetch patterns* per region in a
small buffer: 32 entries, each holding a region tag and a 2-bit state per
block offset (No-Prefetch, Prefetch-to-L1, Prefetch-to-L2; the LLC state is
unused).  Besides compressing storage, the PB is where the stage-2
aggressiveness *promotion* merges into the original pattern: promoting a
block upgrades its state from L2 (or none) to L1, and blocks that were
already issued are not issued again.

Hardware budget (Table I): 8-way, 32 entries, each storing the region tag
(36 b), LRU (3 b) and the 64 x 2 b pattern -- 668 B total.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.prefetchers.tables import LRUTable
from repro.sim.types import (
    PrefetchHint,
    PrefetchRequest,
    address_from_region_offset,
)


class BlockPrefetchState(enum.IntEnum):
    """2-bit per-offset prefetch state stored in the PB."""

    NONE = 0
    TO_L2 = 1
    TO_L1 = 2
    ISSUED = 3


@dataclass
class PrefetchBufferEntry:
    """Prefetch pattern of one region."""

    region: int
    states: Dict[int, BlockPrefetchState] = field(default_factory=dict)
    issued: Dict[int, PrefetchHint] = field(default_factory=dict)


class GazePrefetchBuffer:
    """32-entry buffer of per-region prefetch patterns."""

    REGION_TAG_BITS = 36
    LRU_BITS = 3
    STATE_BITS_PER_BLOCK = 2

    def __init__(self, entries: int = 32, blocks_per_region: int = 64) -> None:
        self.entries = entries
        self.blocks_per_region = blocks_per_region
        self._table: LRUTable[int, PrefetchBufferEntry] = LRUTable(entries)

    # ------------------------------------------------------------------ #
    def _entry_for(self, region: int) -> PrefetchBufferEntry:
        entry = self._table.get(region)
        if entry is None:
            entry = PrefetchBufferEntry(region=region)
            self._table.put(region, entry)
        return entry

    def lookup(self, region: int) -> Optional[PrefetchBufferEntry]:
        """Return the PB entry for ``region`` without creating one."""
        return self._table.get(region, touch=False)

    def add_pattern(
        self,
        region: int,
        offsets_to_l1,
        offsets_to_l2=(),
        exclude_offsets=(),
    ) -> None:
        """Merge a prefetch pattern for ``region`` into the buffer.

        Offsets already marked for a more aggressive level keep that level;
        offsets in ``exclude_offsets`` (typically the trigger and second
        offsets, already demanded) are never added.
        """
        entry = self._entry_for(region)
        excluded = set(exclude_offsets)
        for offset in offsets_to_l2:
            if offset in excluded or not 0 <= offset < self.blocks_per_region:
                continue
            current = entry.states.get(offset, BlockPrefetchState.NONE)
            if current == BlockPrefetchState.NONE:
                entry.states[offset] = BlockPrefetchState.TO_L2
        for offset in offsets_to_l1:
            if offset in excluded or not 0 <= offset < self.blocks_per_region:
                continue
            current = entry.states.get(offset, BlockPrefetchState.NONE)
            if current != BlockPrefetchState.ISSUED:
                entry.states[offset] = BlockPrefetchState.TO_L1

    def promote(self, region: int, offsets) -> List[int]:
        """Stage-2 promotion: upgrade ``offsets`` to L1.

        Returns the offsets that actually need a (re-)issue: blocks already
        issued to the L1 are skipped, blocks issued only to the L2 are
        re-requested at L1.
        """
        entry = self._entry_for(region)
        needs_issue: List[int] = []
        for offset in offsets:
            if not 0 <= offset < self.blocks_per_region:
                continue
            issued_hint = entry.issued.get(offset)
            if issued_hint is PrefetchHint.L1:
                continue
            entry.states[offset] = BlockPrefetchState.TO_L1
            needs_issue.append(offset)
        return needs_issue

    def pop_requests(
        self,
        region: int,
        region_size: int,
        pc: int = 0,
        metadata: str = "",
        limit: Optional[int] = None,
    ) -> List[PrefetchRequest]:
        """Convert the pending pattern of ``region`` into prefetch requests.

        Requests are emitted in ascending block-offset order (the order the
        demand stream will want them) and at most ``limit`` per call, which
        is how the PB smooths the issuance of a whole-region pattern over
        several accesses instead of flooding the prefetch queue.  Pending
        offsets transition to the ISSUED state and are remembered so
        subsequent pattern merges / promotions do not duplicate them.
        """
        entry = self._table.get(region)
        if entry is None:
            return []
        requests: List[PrefetchRequest] = []
        for offset in sorted(entry.states):
            state = entry.states[offset]
            if state in (BlockPrefetchState.NONE, BlockPrefetchState.ISSUED):
                continue
            hint = (
                PrefetchHint.L1 if state == BlockPrefetchState.TO_L1 else PrefetchHint.L2
            )
            requests.append(
                PrefetchRequest(
                    address=address_from_region_offset(region, offset, region_size),
                    hint=hint,
                    origin_pc=pc,
                    metadata=metadata,
                )
            )
            entry.states[offset] = BlockPrefetchState.ISSUED
            entry.issued[offset] = hint
            if limit is not None and len(requests) >= limit:
                break
        return requests

    def __len__(self) -> int:
        return len(self._table)

    def storage_bits(self) -> int:
        """Total storage of the PB in bits (Table I: 668 B)."""
        per_entry = (
            self.REGION_TAG_BITS
            + self.LRU_BITS
            + self.blocks_per_region * self.STATE_BITS_PER_BLOCK
        )
        return self.entries * per_entry

    def reset(self) -> None:
        """Clear all buffered patterns."""
        self._table.clear()
