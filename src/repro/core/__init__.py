"""Gaze: the paper's primary contribution.

Gaze is a spatial prefetcher that characterises spatial patterns with the
*footprint-internal temporal correlation* of a region's first two accesses
(trigger offset + second offset), and adds a dedicated two-stage
aggressiveness control for spatial streaming.

Public API:

* :class:`repro.core.gaze.GazePrefetcher` -- the full design (Fig. 3).
* :mod:`repro.core.variants` -- the ablations used by the paper's analysis
  figures (Offset-only, Gaze-PHT, PHT4SS, SM4SS, N-initial-access variants,
  PC / PC+Address characterizations, and vGaze for large regions).
* The individual hardware structures (filter table, accumulation table,
  pattern history table, dense tracker, prefetch buffer), each sized and
  bit-accounted per Table I.
"""

from repro.core.filter_table import GazeFilterTable
from repro.core.accumulation_table import GazeAccumulationTable, GazeRegionEntry
from repro.core.pattern_history import GazePatternHistoryTable
from repro.core.dense_tracker import DenseCounter, DensePCTable, StreamingModule
from repro.core.prefetch_buffer import GazePrefetchBuffer
from repro.core.gaze import GazeConfig, GazePrefetcher
from repro.core.variants import (
    ContextCharacterizationPrefetcher,
    GazePHTOnly,
    NInitialAccessGaze,
    OffsetOnlyPrefetcher,
    PCAddressPrefetcher,
    PCOnlyPrefetcher,
    StreamingOnlyGaze,
    VirtualGaze,
)

__all__ = [
    "ContextCharacterizationPrefetcher",
    "DenseCounter",
    "DensePCTable",
    "GazeAccumulationTable",
    "GazeConfig",
    "GazeFilterTable",
    "GazePHTOnly",
    "GazePatternHistoryTable",
    "GazePrefetchBuffer",
    "GazePrefetcher",
    "GazeRegionEntry",
    "NInitialAccessGaze",
    "OffsetOnlyPrefetcher",
    "PCAddressPrefetcher",
    "PCOnlyPrefetcher",
    "StreamingModule",
    "StreamingOnlyGaze",
    "VirtualGaze",
]
