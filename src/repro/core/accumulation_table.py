"""Gaze's Accumulation Table (AT).

The AT tracks every active region: it accumulates the footprint bit vector
and keeps the last two access offsets so that the region-local stride logic
(aggressiveness promotion and the backup prefetcher) can compute the last
two strides on every new access.  A region's tracking ends when its entry is
evicted (LRU) -- the accumulated footprint is then handed to the Pattern
History Module for learning.

Hardware budget (Table I): 8-way, 64 entries, each storing the region tag
(36 b), LRU (3 b), hashed PC (12 b), stride flag (1 b), trigger and second
offsets (2 x 6 b), last and penultimate offsets (2 x 6 b) and the 64-bit
footprint -- 1128 B total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.prefetchers.tables import LRUTable


@dataclass(slots=True)
class GazeRegionEntry:
    """State of one actively tracked region."""

    region: int
    trigger_pc: int
    trigger_offset: int
    second_offset: int
    footprint: int = 0
    last_offset: int = -1
    penultimate_offset: int = -1
    stride_flag: bool = False
    access_count: int = 0

    def record(self, offset: int) -> None:
        """Record one access at ``offset``.

        Repeated accesses to the same block (common when several elements of
        one cache line are loaded back-to-back) do not disturb the last /
        penultimate offsets: the stride logic operates on distinct-block
        accesses.
        """
        self.footprint |= 1 << offset
        if offset != self.last_offset:
            self.penultimate_offset = self.last_offset
            self.last_offset = offset
        self.access_count += 1

    def strides_with(self, new_offset: int) -> Optional[Tuple[int, int]]:
        """Return the last two strides given an incoming access at ``new_offset``.

        The strides are formed by the last three *distinct-block* accesses
        (penultimate, last, new); ``None`` if fewer than two prior distinct
        offsets have been observed or the new access repeats the last block.
        """
        if self.last_offset < 0 or self.penultimate_offset < 0:
            return None
        if new_offset == self.last_offset:
            return None
        return (
            self.last_offset - self.penultimate_offset,
            new_offset - self.last_offset,
        )

    def is_fully_dense(self, blocks_per_region: int) -> bool:
        """True when every block of the region has been demanded."""
        full = (1 << blocks_per_region) - 1
        return (self.footprint & full) == full


class GazeAccumulationTable:
    """64-entry LRU accumulation table."""

    REGION_TAG_BITS = 36
    LRU_BITS = 3
    HASHED_PC_BITS = 12
    STRIDE_FLAG_BITS = 1
    VALID_BITS = 1
    OFFSET_BITS = 6

    def __init__(self, entries: int = 64, blocks_per_region: int = 64) -> None:
        self.entries = entries
        self.blocks_per_region = blocks_per_region
        self._table: LRUTable[int, GazeRegionEntry] = LRUTable(entries)

    def lookup(self, region: int) -> Optional[GazeRegionEntry]:
        """Return the tracking entry for ``region`` (refreshing LRU)."""
        return self._table.get(region)

    def insert(
        self,
        region: int,
        trigger_pc: int,
        trigger_offset: int,
        second_offset: int,
        stride_flag: bool = False,
    ) -> Tuple[GazeRegionEntry, Optional[GazeRegionEntry]]:
        """Start tracking ``region``; returns ``(new_entry, evicted_entry)``.

        The new entry already has the trigger and second accesses recorded in
        its footprint.
        """
        entry = GazeRegionEntry(
            region=region,
            trigger_pc=trigger_pc,
            trigger_offset=trigger_offset,
            second_offset=second_offset,
            stride_flag=stride_flag,
        )
        entry.record(trigger_offset)
        entry.record(second_offset)
        evicted = self._table.put(region, entry)
        return entry, evicted[1] if evicted is not None else None

    def remove(self, region: int) -> Optional[GazeRegionEntry]:
        """Stop tracking ``region`` and return its entry."""
        return self._table.pop(region)

    def drain(self) -> List[GazeRegionEntry]:
        """Remove and return every tracked entry (end-of-run deactivation)."""
        entries = list(self._table.values())
        self._table.clear()
        return entries

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, region: int) -> bool:
        return region in self._table

    def storage_bits(self) -> int:
        """Total storage of the AT in bits (Table I: 1128 B)."""
        per_entry = (
            self.REGION_TAG_BITS
            + self.LRU_BITS
            + self.HASHED_PC_BITS
            + self.STRIDE_FLAG_BITS
            + self.VALID_BITS
            + 4 * self.OFFSET_BITS
            + self.blocks_per_region
        )
        return self.entries * per_entry

    def reset(self) -> None:
        """Clear all entries."""
        self._table.clear()
