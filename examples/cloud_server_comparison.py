#!/usr/bin/env python3
"""Scale-out cloud scenario: why context-based characterization struggles.

This reproduces the motivation of the paper's Fig. 1 on a CloudSuite-like
workload: request handlers touch freshly allocated objects with recurring
sparse footprints, but the trigger offset alone is ambiguous, so coarse
characterization (Offset / PMP) mispredicts heavily while fine-grained
characterization (SMS / Bingo) and Gaze's two-access characterization stay
accurate.  The example prints the speedup/accuracy/storage trade-off for
each scheme and a small multi-core run showing how the inaccurate schemes
degrade further under bandwidth contention.

Run with::

    python examples/cloud_server_comparison.py
"""

from repro.prefetchers import create_prefetcher
from repro.sim import default_system_config, simulate_mix, simulate_trace
from repro.workloads import make_trace

SCHEMES = ("offset", "pmp", "pc", "dspatch", "sms", "bingo", "vberti", "gaze")


def single_core() -> None:
    trace = make_trace("cloud", seed=21, length=20_000)
    baseline = simulate_trace(trace, prefetcher=None)
    print(f"single-core cloud workload (baseline IPC {baseline.ipc:.2f})")
    print(f"{'scheme':9s} {'speedup':>8s} {'accuracy':>9s} {'coverage':>9s} {'KiB':>8s}")
    for name in SCHEMES:
        prefetcher = create_prefetcher(name)
        run = simulate_trace(trace, prefetcher=prefetcher)
        print(
            f"{name:9s} {run.speedup(baseline):8.3f} "
            f"{run.prefetch.accuracy:9.2f} {run.coverage(baseline):9.2f} "
            f"{prefetcher.storage_kib():8.2f}"
        )


def four_core() -> None:
    print("\nfour-core heterogeneous mix (cloud + graph + streaming + irregular)")
    traces = [
        make_trace("cloud", seed=31, length=8_000),
        make_trace("graph", seed=32, length=8_000, phase="compute"),
        make_trace("streaming", seed=33, length=8_000),
        make_trace("pointer-chase", seed=34, length=8_000),
    ]
    config = default_system_config(4)
    baseline = simulate_mix(traces, None, config, max_instructions_per_core=25_000)
    for name in ("pmp", "vberti", "gaze"):
        run = simulate_mix(
            traces,
            lambda n=name: create_prefetcher(n),
            config,
            max_instructions_per_core=25_000,
        )
        print(f"  {name:7s} geomean speedup = {run.geomean_speedup(baseline):.3f}")


def main() -> None:
    single_core()
    four_core()


if __name__ == "__main__":
    main()
