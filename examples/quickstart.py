#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without the Gaze prefetcher.

Builds a synthetic SPEC-like workload with recurring spatial footprints,
runs it through the simulated memory hierarchy three times (no prefetching,
PMP, Gaze), and prints the headline metrics the paper reports: speedup,
overall prefetch accuracy, LLC miss coverage and the late-prefetch fraction.

Run with::

    python examples/quickstart.py
"""

from repro import GazePrefetcher, simulate_trace
from repro.prefetchers import create_prefetcher
from repro.workloads import make_trace, trace_statistics


def main() -> None:
    # A fotonik3d-like workload: regions repeatedly exhibit one of a small
    # set of spatial footprints, and the footprint is identified by the
    # order of its first accesses (the property Gaze exploits).
    trace = make_trace("spatial", seed=7, length=20_000, num_classes=12)
    stats = trace_statistics(trace)
    print("workload: spatial-recurrence")
    print(f"  accesses={stats['accesses']:.0f}  regions={stats['distinct_regions']:.0f}"
          f"  mean region density={stats['mean_region_density']:.2f}")

    baseline = simulate_trace(trace, prefetcher=None, name="baseline")
    print(f"\nno prefetching: IPC={baseline.ipc:.3f}  "
          f"LLC MPKI={baseline.llc_mpki:.1f}")

    for name, prefetcher in (
        ("pmp", create_prefetcher("pmp")),
        ("gaze", GazePrefetcher()),
    ):
        run = simulate_trace(trace, prefetcher=prefetcher, name=name)
        print(
            f"{name:>5s}: speedup={run.speedup(baseline):.3f}  "
            f"accuracy={run.prefetch.accuracy:.2f}  "
            f"coverage={run.coverage(baseline):.2f}  "
            f"late={run.prefetch.late_fraction:.2f}  "
            f"storage={prefetcher.storage_kib():.2f} KiB"
        )


if __name__ == "__main__":
    main()
