#!/usr/bin/env python3
"""Regenerate the paper's headline figures/tables at a configurable scale.

This is the reproduction driver: it runs the experiment harness behind the
main figures and prints the resulting rows as text tables.  The ``--scale``
flag trades fidelity for runtime:

* ``quick``  -- 1 trace per suite, 4k accesses (a couple of minutes).
* ``default`` -- 3 traces per suite, 12k accesses (tens of minutes).
* ``full``   -- every trace spec, 40k accesses (hours).

Run with::

    python examples/reproduce_paper.py --scale quick --figures 1 6 7
"""

import argparse

from repro.experiments import figures, tables
from repro.experiments.reporting import format_matrix, format_rows
from repro.experiments.runner import ExperimentRunner, RunScale

SCALES = {
    "quick": RunScale(trace_length=4_000, traces_per_suite=1),
    "default": RunScale(trace_length=12_000, traces_per_suite=3),
    "full": RunScale(trace_length=40_000, traces_per_suite=None),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument(
        "--figures",
        nargs="*",
        type=int,
        default=[1, 4, 6, 7, 8],
        help="paper figure numbers to regenerate (supported: 1 4 6 7 8 9 10 11 12)",
    )
    args = parser.parse_args()

    runner = ExperimentRunner(SCALES[args.scale])

    print("== Table I: Gaze storage breakdown ==")
    print(format_rows(tables.table1_gaze_storage()))
    print("\n== Table IV: baseline storage ==")
    print(format_rows(tables.table4_baseline_storage()))

    dispatch = {
        1: lambda: print(format_rows(figures.fig1_characterization(runner))),
        4: lambda: print(format_rows(figures.fig4_initial_accesses(runner))),
        6: lambda: print(format_matrix(figures.fig6_single_core_speedup(runner))),
        7: lambda: print(format_matrix(figures.fig7_accuracy(runner))),
        8: lambda: print(
            format_matrix(figures.fig8_coverage_timeliness(runner)["coverage"])
        ),
        9: lambda: print(figures.fig9_characterization_effect(runner)["averages"]),
        10: lambda: print(format_rows(figures.fig10_streaming_module(runner))),
        11: lambda: print(format_rows(figures.fig11_comparative(runner))),
        12: lambda: print(format_matrix(figures.fig12_gap_qmm(runner))),
    }
    for number in args.figures:
        if number not in dispatch:
            print(f"\n(figure {number} not supported by this driver; "
                  f"see benchmarks/ for the full set)")
            continue
        print(f"\n== Figure {number} ==")
        dispatch[number]()


if __name__ == "__main__":
    main()
