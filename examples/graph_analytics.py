#!/usr/bin/env python3
"""Graph analytics scenario: the workload family that motivates Gaze's
streaming module (paper §III-C, Fig. 5 and Fig. 10).

A BFS/PageRank-style traversal interleaves dense streaming (the frontier and
the CSR edge array) with irregular neighbour-data accesses.  Replaying dense
footprints naively over-prefetches the partially-touched regions; Gaze's
Dense-PC Table / Dense Counter double check avoids that.  This example
compares three configurations on both program phases:

* ``pht4ss`` -- the dense pattern is learned and replayed through the PHT;
* ``sm4ss``  -- the dedicated streaming module handles it;
* ``gaze``   -- the full design.

Run with::

    python examples/graph_analytics.py
"""

from repro.prefetchers import create_prefetcher
from repro.sim import simulate_trace
from repro.workloads import make_trace


def run_phase(phase: str, algorithm: str) -> None:
    trace = make_trace(
        "graph", seed=11, length=20_000, phase=phase, algorithm=algorithm
    )
    baseline = simulate_trace(trace, prefetcher=None)
    print(f"\n{algorithm} / {phase} phase "
          f"(baseline IPC {baseline.ipc:.2f}, LLC MPKI {baseline.llc_mpki:.1f})")
    for name in ("pht4ss", "sm4ss", "gaze", "pmp", "vberti"):
        run = simulate_trace(trace, prefetcher=create_prefetcher(name))
        print(
            f"  {name:7s} speedup={run.speedup(baseline):.3f}  "
            f"accuracy={run.prefetch.accuracy:.2f}  "
            f"coverage={run.coverage(baseline):.2f}"
        )


def main() -> None:
    # Initial phase: data preparation, almost pure streaming -- all three
    # streaming settings should behave nearly identically.
    run_phase("init", "pagerank")
    # Computing phase: interleaved streaming + irregular accesses -- the
    # dedicated streaming module (and full Gaze) should hold its accuracy
    # while naive dense-pattern replay over-prefetches.
    run_phase("compute", "pagerank")
    run_phase("compute", "bfs")


if __name__ == "__main__":
    main()
