"""Setup shim: editable installs plus the *optional* compiled kernel tier.

The C extension ``repro._kernels`` accelerates the flat prefetcher train
loops (see ``src/repro/prefetchers/compiled.py``) and carries the
``DriverKernel`` batched driver loop (see ``src/repro/sim/driver.py``),
which runs the whole single-core simulation chunk-at-a-time in C under
``kernel="compiled"``.  It is strictly optional —
``Extension(..., optional=True)`` makes a missing compiler or headers a
warning rather than a build failure, and every consumer falls back to
the pure-Python tiers when the artifact is absent.

Build it in place with::

    python setup.py build_ext --inplace

Debug/sanitizer tier
--------------------
``REPRO_DEBUG_KERNELS=1 python setup.py build_ext --inplace`` compiles
the extension with internal invariant assertions (LRU chain integrity,
MSHR occupancy accounting, stat-delta conservation; see the
``REPRO_DEBUG_KERNELS`` block in ``src/repro/_kernels.c``).  The checks
are read-only, so a debug build stays bit-identical to a release build —
the module exports ``DEBUG_KERNELS`` (0/1) so tests can tell which
variant is loaded.  Combine with ASan/UBSan via ``CFLAGS``/``LDFLAGS``
(see ``.github/workflows/ci.yml``, lane ``kernel-sanitize``).
"""

import os
import sys

from setuptools import Extension, setup

# MSVC takes neither -Wall-style spellings nor -g; everything else we
# target (gcc, clang) takes both.
_msvc = sys.platform == "win32"
extra_compile_args = [] if _msvc else ["-Wall", "-Wextra"]
define_macros = []
undef_macros = []

if os.environ.get("REPRO_DEBUG_KERNELS") == "1":
    define_macros.append(("REPRO_DEBUG_KERNELS", "1"))
    # Keep assert-friendly codegen: no NDEBUG, symbols, light optimisation.
    undef_macros.append("NDEBUG")
    if not _msvc:
        extra_compile_args += ["-g", "-O1"]

setup(
    ext_modules=[
        Extension(
            "repro._kernels",
            sources=["src/repro/_kernels.c"],
            optional=True,
            extra_compile_args=extra_compile_args,
            define_macros=define_macros,
            undef_macros=undef_macros,
        )
    ]
)
