"""Setup shim: editable installs plus the *optional* compiled kernel tier.

The C extension ``repro._kernels`` accelerates the flat prefetcher train
loops (see ``src/repro/prefetchers/compiled.py``) and carries the
``DriverKernel`` batched driver loop (see ``src/repro/sim/driver.py``),
which runs the whole single-core simulation chunk-at-a-time in C under
``kernel="compiled"``.  It is strictly optional —
``Extension(..., optional=True)`` makes a missing compiler or headers a
warning rather than a build failure, and every consumer falls back to
the pure-Python tiers when the artifact is absent.

Build it in place with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro._kernels",
            sources=["src/repro/_kernels.c"],
            optional=True,
        )
    ]
)
